"""Packed-choice layout planning and generation for the placement kernels.

The kernel backends in this package all consume the same input encoding:
every candidate bin of every pending ball is packed into one integer::

    packed = tie_key << cidx_bits  |  trial * (n_bins + 1) + bin

The low ``cidx_bits`` hold the *flat candidate index* — the bin index
offset by its trial's row start in a padded ``(trials, n_bins + 1)`` load
table — and the high ``tie_bits`` hold the tie-break key.  Prepending the
current load gives the full 64-bit comparison key

    key = load << key_shift  |  tie_key << cidx_bits  |  flat_index

whose *minimum over the d candidates* simultaneously decides the placement
(lexicographic on ``(load, tie_key, bin)``) and, via its low bits, *is* the
chosen flat bin index — no argmin/advanced-indexing machinery needed.
Field widths are selected and guarded by :mod:`repro.kernels.packing`.

Tie semantics
-------------
- ``tie_break="random"``: ``tie_key`` is uniform random (``tie_bits`` wide,
  default 10).  Candidates that collide on both load and tie key fall back
  to the lower bin index — a per-tie bias of order ``2**-tie_bits``, far
  below the sampling error of any experiment in the paper (the
  cross-engine equivalence tests in ``tests/kernels`` verify this).
- ``tie_break="left"``: ``tie_key`` is the candidate's *column index*, so
  the minimum key reproduces numpy's first-minimum ``argmin`` exactly —
  including for non-partitioned schemes, where "left" means leftmost
  choice position, not lowest bin index.

Padding
-------
Each trial owns one *dummy bin* (index ``n_bins``) and each generated
block one *dummy ball* (column ``steps``) whose candidates all point at
the dummy bin.  Kernel windows past the end of a trial's ball sequence
park on the dummy ball; it is never committed and the dummy bin never
collides with a real candidate.

Capacity: narrow and wide layouts
---------------------------------
The historical layout packs candidates into int32 with
``key_shift == 31`` (``tie_bits + cidx_bits == 31``), which caps the
table near ``n ≈ 2**23`` for random tie-breaking.  Those *narrow*
layouts are still planned first — their draw streams and results are
bit-identical to every earlier release.  When ``n_bins`` outgrows the
int32 address space, :func:`plan_layout` now plans a *wide* layout
instead: candidates packed into int64, ``key_shift = tie_bits +
cidx_bits`` sized to the table, and the remaining ``63 - key_shift``
bits (:attr:`KernelLayout.load_bits`) left for the load field.  Wide
layouts keep the whole fused-kernel machinery (and the giant-``n``
scale-out, see ``docs/scale.md``) instead of dropping to the strided
engine; the load field is overflow-checked after every trial chunk
(loads only grow, so a final load under ``2**load_bits`` proves no
intermediate key ever wrapped).  ``plan_layout`` returns ``None`` only
when even the wide layout cannot host the geometry.  Trials are
processed in chunks of :attr:`KernelLayout.trial_chunk` so the flat
index also stays within the field.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hashing.base import ChoiceScheme
from repro.hashing.double_hashing import DoubleHashingChoices
from repro.kernels.packing import (
    INT32_VALUE_BITS,
    INT64_VALUE_BITS,
    check_packed_fields,
    field_width,
    select_tie_bits,
)

__all__ = [
    "KEY_SHIFT",
    "KernelLayout",
    "generate_packed",
    "plan_layout",
]

# The narrow layout's load-field shift: loads sit above the 31 packed bits
# of an int32 candidate; int64 keys then support loads up to 2**32.
KEY_SHIFT = INT32_VALUE_BITS

_RANDOM_TIE_BITS = 10       # default tie-key width for "random"
_MIN_RANDOM_TIE_BITS = 8    # trade down to here before going wide
# Per-plane element cap on the packed-choice buffer (~8 MiB of int32 per
# choice plane) so trial chunking also bounds generation scratch.
_MAX_PLANE_ELEMENTS = 2 << 20
# Wide layouts additionally cap the padded load table per trial chunk
# (elements, not bytes): 2**24 int32 entries is 64 MiB of table plus the
# same again of stamp scratch — the memory model documented in
# ``docs/scale.md``.  Narrow layouts keep their historical chunking
# untouched (it is part of the pinned draw stream).
_MAX_TABLE_ELEMENTS = 1 << 24


@dataclass(frozen=True)
class KernelLayout:
    """Bit layout and chunking plan for one packed-kernel run."""

    n_bins: int
    d: int
    tie_break: str
    tie_bits: int
    cidx_bits: int
    trial_chunk: int
    key_shift: int = KEY_SHIFT
    wide: bool = False

    @property
    def bins_p(self) -> int:
        """Bins per trial including the dummy padding bin."""
        return self.n_bins + 1

    @property
    def cidx_mask(self) -> np.int64:
        """Mask extracting the flat candidate index from a packed value."""
        return np.int64((1 << self.cidx_bits) - 1)

    @property
    def dtype(self) -> np.dtype:
        """Dtype of the packed candidate arrays (int32 narrow, int64 wide)."""
        return np.dtype(np.int64) if self.wide else np.dtype(np.int32)

    @property
    def load_bits(self) -> int:
        """Value bits available to the load field of the comparison key."""
        return (INT64_VALUE_BITS + 1) - self.key_shift if not self.wide else (
            INT64_VALUE_BITS - self.key_shift
        )


def plan_layout(
    n_bins: int, d: int, tie_break: str, trials: int, block: int
) -> KernelLayout | None:
    """Plan the packed layout, or ``None`` when no layout can host it.

    ``block`` is the ball-steps-per-generation superblock; it only bounds
    the trial chunk via the scratch-memory cap.  Narrow (int32) layouts
    are planned exactly as in previous releases — bit-identical streams —
    and wide (int64) layouts take over beyond the int32 address space.
    """
    bins_p = n_bins + 1
    if tie_break == "left":
        preferred = minimum = field_width(d)
    else:
        preferred = _RANDOM_TIE_BITS if d > 1 else 0
        minimum = min(preferred, _MIN_RANDOM_TIE_BITS)
    tie_bits = select_tie_bits(
        bins_p, preferred=preferred, minimum=minimum,
        address_bits=KEY_SHIFT,
    )
    if tie_bits is not None:
        cidx_bits = KEY_SHIFT - tie_bits
        chunk = min(
            trials,
            (1 << cidx_bits) // bins_p,
            max(1, _MAX_PLANE_ELEMENTS // (block + 1)),
        )
        return KernelLayout(
            n_bins=n_bins,
            d=d,
            tie_break=tie_break,
            tie_bits=tie_bits,
            cidx_bits=cidx_bits,
            trial_chunk=max(1, chunk),
        )
    return _plan_wide(n_bins, d, tie_break, trials, block, preferred)


def _plan_wide(
    n_bins: int,
    d: int,
    tie_break: str,
    trials: int,
    block: int,
    tie_bits: int,
) -> KernelLayout | None:
    """Wide (int64-packed) layout for tables beyond the int32 space."""
    bins_p = n_bins + 1
    chunk = max(
        1,
        min(
            trials,
            _MAX_TABLE_ELEMENTS // bins_p,
            max(1, _MAX_PLANE_ELEMENTS // (block + 1)),
        ),
    )
    # The flat index must stay a valid int32 (the scatter/stamp scratch
    # stays 32-bit); beyond that no table fits memory anyway.
    while chunk > 1 and bins_p * chunk > (1 << INT32_VALUE_BITS):
        chunk -= 1
    cidx_bits = field_width(bins_p * chunk)
    if cidx_bits > INT32_VALUE_BITS:
        return None
    key_shift = tie_bits + cidx_bits
    try:
        check_packed_fields(
            # At least one value bit must remain for the load field.
            {"load": 1, "tie": tie_bits, "cidx": cidx_bits},
            carrier_bits=INT64_VALUE_BITS,
            context=f"wide placement layout (n_bins={n_bins}, d={d})",
        )
    except Exception:
        return None
    return KernelLayout(
        n_bins=n_bins,
        d=d,
        tie_break=tie_break,
        tie_bits=tie_bits,
        cidx_bits=cidx_bits,
        trial_chunk=chunk,
        key_shift=key_shift,
        wide=True,
    )


def generate_packed(
    scheme: ChoiceScheme,
    trials: int,
    steps: int,
    rng: np.random.Generator,
    layout: KernelLayout,
) -> np.ndarray:
    """Packed candidates for ``steps`` balls of ``trials`` trials.

    Returns a ``(d, trials, steps + 1)`` array of :attr:`KernelLayout.dtype`;
    column ``steps`` is the dummy ball.  Plane ``j`` holds candidate ``j``
    of every ball — the planar layout keeps each kernel gather contiguous
    per plane.
    """
    d = layout.d
    n = layout.n_bins
    pc = np.empty((d, trials, steps + 1), dtype=layout.dtype)
    toff = np.arange(trials, dtype=np.int64) * np.int64(layout.bins_p)
    if not layout.wide:
        toff = toff.astype(np.int32)
    pc[:, :, steps] = toff + n
    if steps == 0:
        return pc
    if _fused_double_pow2_ok(scheme, layout):
        _fill_double_pow2(trials, steps, rng, layout, pc, toff)
    else:
        _fill_generic(scheme, trials, steps, rng, layout, pc, toff)
    return pc


def _fused_double_pow2_ok(scheme: ChoiceScheme, layout: KernelLayout) -> bool:
    """Whether the single-draw double-hashing fast path applies.

    One uint64 per ball supplies ``f`` (``log2 n`` bits), the odd stride
    ``g`` (``log2 n - 1`` bits), and all ``d`` tie keys — so the whole
    choice block needs exactly one RNG call per generation chunk.
    """
    n = layout.n_bins
    if type(scheme) is not DoubleHashingChoices:
        return False
    if layout.tie_break != "random":
        return False
    if n < 2 or n & (n - 1):
        return False
    lb = n.bit_length() - 1
    return lb + (lb - 1) + layout.d * layout.tie_bits <= 64


def _fill_double_pow2(
    trials: int,
    steps: int,
    rng: np.random.Generator,
    layout: KernelLayout,
    pc: np.ndarray,
    toff: np.ndarray,
    chunk: int = 1024,
) -> None:
    """Fused power-of-two double-hashing generation (see above)."""
    n = layout.n_bins
    d = layout.d
    lb = n.bit_length() - 1
    tie_bits = layout.tie_bits
    nbits = lb + (lb - 1) + d * tie_bits
    tie_mask = np.uint64((1 << tie_bits) - 1)
    dt = layout.dtype
    # Branchless wrap uses the sign bit of the working dtype.
    sign_shift = 63 if layout.wide else 31
    toff2 = toff[:, None]
    # Column-chunked so every per-chunk temporary stays L2-resident.
    for c0 in range(0, steps, chunk):
        c1 = min(c0 + chunk, steps)
        raw = rng.integers(0, 1 << nbits, size=(trials, c1 - c0), dtype=np.uint64)
        f = (raw & np.uint64(n - 1)).astype(dt)
        g = ((raw >> np.uint64(lb)) & np.uint64(max(n // 2 - 1, 0))).astype(dt)
        g += g
        g += 1  # force odd: exactly the units mod 2**k
        cur = f
        shift = 2 * lb - 1
        for j in range(d):
            if j:
                # Branchless modular stride: cur = (cur + g) mod n without
                # a division (cur + g < 2n is guaranteed).
                cur += g
                cur -= n
                wrap = cur >> sign_shift
                wrap &= n
                cur += wrap
            bits = ((raw >> np.uint64(shift)) & tie_mask).astype(dt)
            shift += tie_bits
            out = pc[j, :, c0:c1]
            np.left_shift(bits, layout.cidx_bits, out=out)
            out += cur
            out += toff2


def _fill_generic(
    scheme: ChoiceScheme,
    trials: int,
    steps: int,
    rng: np.random.Generator,
    layout: KernelLayout,
    pc: np.ndarray,
    toff: np.ndarray,
) -> None:
    """Any-scheme generation via :meth:`ChoiceScheme.batch_planar`."""
    d = layout.d
    planar = scheme.batch_planar(trials * steps, rng)
    choices = planar.reshape(d, trials, steps)
    out = pc[:, :, :steps]
    if layout.tie_break == "random" and layout.tie_bits and d > 1:
        bits = rng.integers(
            0, 1 << layout.tie_bits, size=(d, trials, steps),
            dtype=layout.dtype,
        )
        np.left_shift(bits, layout.cidx_bits, out=bits)
        np.add(bits, choices, out=out, casting="unsafe")
    else:
        np.copyto(out, choices, casting="unsafe")
        if layout.tie_break == "left" and layout.tie_bits:
            cols = np.arange(d, dtype=layout.dtype) << layout.cidx_bits
            out += cols[:, None, None]
    out += toff[:, None]
