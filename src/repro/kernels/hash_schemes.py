"""Vectorized hash-family kernels: tabulation gather + pairwise affine.

The hash-family zoo (:mod:`repro.hashing.hash_functions`) historically
evaluated simple tabulation with one numpy fancy-index per character and
Carter–Wegman families through per-element Python-int arithmetic — fine
for correctness, far too slow for the n = 2^24 equivalence sweeps the
certification tiers run.  This module is the kernel-grade hot path those
families now delegate to, mirroring the placement/supermarket/peeling
split: a numpy tier that is always available, an optional ``@njit`` tier
(:mod:`repro.kernels.numba_hash`) selected through the same backend
registry (explicit ``backend=`` > ``REPRO_BACKEND`` env > auto), and
pure-Python scalar oracles that the cross-backend bit-identity suites
check both tiers against.

Two primitives ship:

``tabulation_hash_u64``
    Simple tabulation over 64-bit keys split into eight 8-bit
    characters (Patrascu–Thorup, *The Power of Simple Tabulation
    Hashing*, JACM 2012).  The eight ``(256,)`` lookup tables are
    flattened into one contiguous ``(2048,)`` uint64 array so every
    character becomes a single flat ``np.take`` gather at offset
    ``c * 256`` — eight gathers XOR-folded into the accumulator, block
    chunked so key block, byte scratch, and accumulator stay cache
    resident.  The flat layout also feeds the numba tier unchanged,
    where the eight gathers unroll into one load per character with the
    XOR chain carried in a register.

``pairwise_affine_u64``
    The degree-1 Carter–Wegman family ``(a·x + b) mod p`` over the
    Mersenne prime ``p = 2^61 - 1`` — exactly pairwise independent on
    keys in ``[0, p)`` (Carter–Wegman, JCSS 1979), the minimal
    guarantee the paper's closing remark singles out as sufficient for
    double-hashing equivalence.  The Mersenne modulus makes the
    reduction branch-free (fold the top bits back with shift + mask, no
    division); the 64×64-bit product is evaluated exactly in uint64 via
    32-bit limb splitting and ``2^64 ≡ 8 (mod p)``.

Both primitives return the *unreduced* hash in the family's native
range; reducing to ``[0, n)`` (mask for powers of two, modulo
otherwise) stays in the calling family so the independence bookkeeping
lives in one place.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.kernels import numba_hash as _numba_hash

__all__ = [
    "MERSENNE_P",
    "TAB_CHARS",
    "TAB_TABLE_SIZE",
    "flatten_tables",
    "pairwise_affine_scalar",
    "pairwise_affine_u64",
    "tabulation_hash_scalar",
    "tabulation_hash_u64",
]

_U64 = np.uint64

#: The Mersenne prime ``2^61 - 1`` used by the pairwise-affine family.
MERSENNE_P = (1 << 61) - 1

#: Characters per 64-bit key and entries per character table.
TAB_CHARS = 8
TAB_TABLE_SIZE = 256

#: Keys hashed per chunk.  One chunk touches ``3 × 8 bytes × block``
#: of scratch (keys, byte indices, accumulator) — 768 KiB at 2^15,
#: L2-resident next to the 16 KiB flat table.
_BLOCK = 1 << 15

_P61 = _U64(MERSENNE_P)
_SH61 = _U64(61)
_SH32 = _U64(32)
_SH29 = _U64(29)
_MASK32 = _U64((1 << 32) - 1)
_MASK29 = _U64((1 << 29) - 1)


def _keys_u64(keys: np.ndarray) -> np.ndarray:
    """Normalize a key batch to a 1-D uint64 view (no copy when possible)."""
    arr = np.asarray(keys)
    if arr.ndim != 1:
        raise ConfigurationError(
            f"keys must be a 1-D array, got shape {arr.shape}"
        )
    if arr.dtype == np.int64:
        return arr.view(_U64)
    if arr.dtype != _U64:
        return arr.astype(_U64)
    return arr


def _use_numba(backend: str | None) -> bool:
    """Resolve to the numba tier through the shared backend registry."""
    from repro.kernels import resolve_backend

    return (
        resolve_backend(backend).name == "numba"
        and _numba_hash.NUMBA_AVAILABLE
    )


def flatten_tables(tables: np.ndarray) -> np.ndarray:
    """Flatten ``(8, 256)`` tabulation tables into the gather layout.

    Character ``c``'s table occupies ``flat[c * 256 : (c + 1) * 256]``,
    so the per-character gather index is ``(c << 8) | byte`` into one
    contiguous 16 KiB array.
    """
    tables = np.asarray(tables, dtype=_U64)
    if tables.shape != (TAB_CHARS, TAB_TABLE_SIZE):
        raise ConfigurationError(
            f"expected ({TAB_CHARS}, {TAB_TABLE_SIZE}) tables, "
            f"got shape {tables.shape}"
        )
    return np.ascontiguousarray(tables.reshape(-1))


# --------------------------------------------------------------------------
# Simple tabulation
# --------------------------------------------------------------------------


def _tabulation_numpy(keys: np.ndarray, flat: np.ndarray,
                      out: np.ndarray) -> None:
    """Numpy tier: eight flat gathers XOR-folded, block chunked."""
    m = keys.size
    idx = np.empty(min(m, _BLOCK), dtype=np.int64)
    shifted = np.empty(min(m, _BLOCK), dtype=_U64)
    for start in range(0, m, _BLOCK):
        stop = min(start + _BLOCK, m)
        w = stop - start
        np.copyto(shifted[:w], keys[start:stop])
        acc = out[start:stop]
        acc.fill(0)
        for c in range(TAB_CHARS):
            idx[:w] = (shifted[:w] & _U64(0xFF)).view(np.int64)
            idx[:w] += c << 8
            acc ^= flat.take(idx[:w])
            shifted[:w] >>= _U64(8)


def tabulation_hash_u64(
    keys: np.ndarray,
    flat_tables: np.ndarray,
    *,
    backend: str | None = None,
) -> np.ndarray:
    """Hash a key batch through simple tabulation; full 64-bit output.

    Parameters
    ----------
    keys:
        1-D integer array (int64 keys are reinterpreted as uint64, so
        the full 64-bit pattern is hashed).
    flat_tables:
        ``(2048,)`` uint64 gather table from :func:`flatten_tables`.
    backend:
        Kernel backend name; resolution follows
        :func:`repro.kernels.resolve_backend` (explicit >
        ``REPRO_BACKEND`` env > auto), with the registry's silent
        numba-to-numpy fallback.  Tiers are bit-identical.
    """
    flat = np.asarray(flat_tables, dtype=_U64)
    if flat.shape != (TAB_CHARS * TAB_TABLE_SIZE,):
        raise ConfigurationError(
            f"expected a ({TAB_CHARS * TAB_TABLE_SIZE},) flat table, "
            f"got shape {flat.shape}"
        )
    arr = _keys_u64(keys)
    out = np.empty(arr.size, dtype=_U64)
    if _use_numba(backend):
        _numba_hash.tabulation_u64(arr, flat, out)
    else:
        _tabulation_numpy(arr, flat, out)
    return out


def tabulation_hash_scalar(key: int, tables: np.ndarray) -> int:
    """Pure-Python scalar oracle for :func:`tabulation_hash_u64`.

    Walks the ``(8, 256)`` tables with Python ints only; the vectorized
    tiers must match it bit for bit on every key (the cross-backend
    suites assert exactly this).
    """
    x = int(key) & ((1 << 64) - 1)
    acc = 0
    for c in range(TAB_CHARS):
        acc ^= int(tables[c][(x >> (8 * c)) & 0xFF])
    return acc


# --------------------------------------------------------------------------
# Pairwise affine over the Mersenne prime 2^61 - 1
# --------------------------------------------------------------------------


def _fold61(x: np.ndarray) -> np.ndarray:
    """One Mersenne fold: ``x mod 2^61-1`` partially, result < 2^61 + 8."""
    return (x >> _SH61) + (x & _P61)


def _mod_p61(x: np.ndarray) -> np.ndarray:
    """Full reduction of uint64 values to ``[0, p)``, branch-free."""
    r = _fold61(_fold61(x))
    return np.where(r >= _P61, r - _P61, r)


def _pairwise_numpy(keys: np.ndarray, a: int, b: int,
                    out: np.ndarray) -> None:
    """Numpy tier: exact ``(a·x + b) mod (2^61-1)`` in uint64 limbs.

    Keys are first reduced mod p, then the 61×61-bit product is split
    into 32-bit limbs; the cross terms re-enter via ``2^64 ≡ 8`` and
    ``2^32 = 2^61 / 2^29``, so every intermediate stays below 2^63 and
    the arithmetic is exact (no wraparound).
    """
    a_u = _U64(a)
    a_hi = a_u >> _SH32
    a_lo = a_u & _MASK32
    x = _mod_p61(keys)
    x_hi = x >> _SH32
    x_lo = x & _MASK32
    # a_hi·x_hi·2^64 ≡ 8·a_hi·x_hi, already < p.
    term1 = (a_hi * x_hi) << _U64(3)
    # (a_hi·x_lo + a_lo·x_hi)·2^32: split at 29 bits so the 2^61 part
    # folds to 1 and the rest stays below 2^61.
    mid = a_hi * x_lo + a_lo * x_hi
    term2 = (mid >> _SH29) + ((mid & _MASK29) << _SH32)
    # a_lo·x_lo < 2^64: one fold brings it under 2^61 + 8.
    term3 = _fold61(a_lo * x_lo)
    total = term1 + term2 + term3 + _U64(b)
    np.copyto(out, _mod_p61(total))


def pairwise_affine_u64(
    keys: np.ndarray,
    a: int,
    b: int,
    *,
    backend: str | None = None,
) -> np.ndarray:
    """Hash a key batch through ``(a·x + b) mod (2^61 - 1)``.

    Returns the unreduced hash in ``[0, p)``; keys at or above ``p``
    are reduced mod ``p`` first (the family is exactly pairwise
    independent on ``[0, p)``).  Backend resolution as in
    :func:`tabulation_hash_u64`; tiers are bit-identical.
    """
    if not 1 <= a < MERSENNE_P:
        raise ConfigurationError(f"need 1 <= a < 2^61-1, got {a}")
    if not 0 <= b < MERSENNE_P:
        raise ConfigurationError(f"need 0 <= b < 2^61-1, got {b}")
    arr = _keys_u64(keys)
    out = np.empty(arr.size, dtype=_U64)
    if _use_numba(backend):
        _numba_hash.pairwise_u64(arr, _U64(a), _U64(b), out)
    else:
        _pairwise_numpy(arr, a, b, out)
    return out


def pairwise_affine_scalar(key: int, a: int, b: int) -> int:
    """Pure-Python scalar oracle for :func:`pairwise_affine_u64`."""
    x = (int(key) & ((1 << 64) - 1)) % MERSENNE_P
    return (a * x + b) % MERSENNE_P
