"""Optional Numba JIT backend for the open-addressed keymap kernel.

Walks exactly the probe sequence :mod:`repro.hashing.probe` defines —
one splitmix64 pass per key, high bits for the start slot, low bits
forced odd for the stride — as a straight sequential loop per key,
compiled with ``@njit(cache=True)``.  Sequential execution makes the
batch semantics (set-default inserts, duplicate-key ordering,
delete-miss behavior) trivially identical to the dict oracle; the
cross-backend suites in ``tests/kernels/test_keymap.py`` assert exact
equality anyway.

Lookups additionally come in a ``parallel=True`` / ``prange`` variant
(the ``"numba-parallel"`` keymap backend): lookups never write to the
table, so rows are embarrassingly parallel.

Numba is an optional dependency: importing this module never raises.
When the import fails, :data:`NUMBA_AVAILABLE` is ``False`` and
:func:`repro.kernels.keymap.resolve_keymap_backend` falls back to
numpy, logging a ``backend-fallback`` metrics event.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "NUMBA_AVAILABLE",
    "NUMBA_IMPORT_ERROR",
    "delete_njit",
    "insert_njit",
    "lookup_njit",
    "lookup_parallel_njit",
    "rebuild_njit",
]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    NUMBA_AVAILABLE = True
    NUMBA_IMPORT_ERROR: Exception | None = None
except Exception as _exc:  # ImportError, or a broken install
    njit = None
    prange = None
    NUMBA_AVAILABLE = False
    NUMBA_IMPORT_ERROR = _exc


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed

    @njit(cache=True, inline="always")
    def _probe(key: np.int64, seed: np.uint64, cap_bits: np.int64):
        # splitmix64 finalizer (Stafford mix13), bit-identical to
        # repro.hashing.probe.splitmix64_scalar.  All-uint64 arithmetic:
        # mixing in signed ints would promote to float64 under numba.
        x = np.uint64(key) ^ seed
        x = x + np.uint64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        x = x ^ (x >> np.uint64(31))
        start = np.int64(x >> np.uint64(np.int64(64) - cap_bits))
        low = x & np.uint64((np.int64(1) << cap_bits) - np.int64(1))
        stride = np.int64(low | np.uint64(1))
        return start, stride

    @njit(cache=True)
    def insert_njit(tkeys, tvals, cap_bits, keys, vals, prev, seed):
        """Set-default batch insert; fills ``prev``; returns (inserted, probes)."""
        n = keys.shape[0]
        smask = (np.int64(1) << cap_bits) - np.int64(1)
        inserted = 0
        probes = 0
        for i in range(n):
            k = keys[i]
            cur, stride = _probe(k, seed, cap_bits)
            while True:
                probes += 1
                v = tvals[cur]
                if v == -1:
                    tkeys[cur] = k
                    tvals[cur] = vals[i]
                    prev[i] = -1
                    inserted += 1
                    break
                if v >= 0 and tkeys[cur] == k:
                    prev[i] = v
                    break
                cur = (cur + stride) & smask
        return inserted, probes

    @njit(cache=True)
    def rebuild_njit(tkeys, tvals, cap_bits, keys, vals, seed):
        """Insert distinct keys into a fresh table (the rehash kernel)."""
        n = keys.shape[0]
        smask = (np.int64(1) << cap_bits) - np.int64(1)
        for i in range(n):
            k = keys[i]
            cur, stride = _probe(k, seed, cap_bits)
            while tvals[cur] != -1:
                cur = (cur + stride) & smask
            tkeys[cur] = k
            tvals[cur] = vals[i]

    @njit(cache=True)
    def delete_njit(tkeys, tvals, cap_bits, keys, prev, seed):
        """Tombstone batch delete; fills ``prev``; returns (deleted, probes)."""
        n = keys.shape[0]
        smask = (np.int64(1) << cap_bits) - np.int64(1)
        deleted = 0
        probes = 0
        for i in range(n):
            k = keys[i]
            cur, stride = _probe(k, seed, cap_bits)
            while True:
                probes += 1
                v = tvals[cur]
                if v == -1:
                    prev[i] = -1
                    break
                if v >= 0 and tkeys[cur] == k:
                    prev[i] = v
                    tvals[cur] = -2
                    deleted += 1
                    break
                cur = (cur + stride) & smask
        return deleted, probes

    @njit(cache=True)
    def lookup_njit(tkeys, tvals, cap_bits, keys, out, seed):
        """Batch lookup; fills ``out``; returns probes."""
        n = keys.shape[0]
        smask = (np.int64(1) << cap_bits) - np.int64(1)
        probes = 0
        for i in range(n):
            k = keys[i]
            cur, stride = _probe(k, seed, cap_bits)
            while True:
                probes += 1
                v = tvals[cur]
                if v == -1:
                    out[i] = -1
                    break
                if v >= 0 and tkeys[cur] == k:
                    out[i] = v
                    break
                cur = (cur + stride) & smask
        return probes

    @njit(cache=True, parallel=True)
    def lookup_parallel_njit(tkeys, tvals, cap_bits, keys, out, seed):
        """``prange`` batch lookup; fills ``out``; returns probes."""
        n = keys.shape[0]
        smask = (np.int64(1) << cap_bits) - np.int64(1)
        probes = 0
        for i in prange(n):
            k = keys[i]
            cur, stride = _probe(k, seed, cap_bits)
            local = 0
            while True:
                local += 1
                v = tvals[cur]
                if v == -1:
                    out[i] = -1
                    break
                if v >= 0 and tkeys[cur] == k:
                    out[i] = v
                    break
                cur = (cur + stride) & smask
            probes += local
        return probes
