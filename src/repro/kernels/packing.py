"""Packed-key width selection and overflow guards for the kernels.

Every hot loop in :mod:`repro.kernels` rides on one idiom: several small
non-negative fields are packed into a single machine integer so that one
scalar ``min`` decides a lexicographic comparison.  The placement kernels
pack ``load << key_shift | tie_key << cidx_bits | flat_bin`` and the
supermarket kernels pack ``queue_len << TIE_BITS | tie_key``.  Both were
historically hard-coded (31 value bits of an int32 for placement, a 20-bit
tie field for queues) with no guard on the high field, so a sufficiently
deep queue or a sufficiently large table could silently corrupt the argmin.

This module is the one place widths are chosen and checked:

- :func:`field_width` — bits needed to hold a field's value range;
- :func:`check_packed_fields` — the overflow guard: the fields of a packed
  key must fit the carrier integer's value bits, else
  :class:`~repro.errors.ConfigurationError` (never silent wraparound);
- :func:`select_tie_bits` — the tie-width negotiation the placement layout
  planner uses (trade tie resolution down for address space);
- :func:`pack_key` / :func:`unpack_key` — the reference (slow, exact)
  packing used by tests and documentation.

Carrier widths are expressed in *value bits*: :data:`INT32_VALUE_BITS` (31)
and :data:`INT64_VALUE_BITS` (63), keeping the sign bit clear so ordinary
signed comparisons order packed keys correctly.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = [
    "INT32_VALUE_BITS",
    "INT64_VALUE_BITS",
    "check_packed_fields",
    "field_width",
    "pack_key",
    "select_tie_bits",
    "unpack_key",
]

#: Value bits of a signed 32-bit carrier (sign bit stays clear).
INT32_VALUE_BITS = 31
#: Value bits of a signed 64-bit carrier (sign bit stays clear).
INT64_VALUE_BITS = 63


def field_width(n_values: int) -> int:
    """Bits needed to hold any value in ``[0, n_values)``.

    ``field_width(1)`` is 0 — a field with a single possible value needs
    no bits.  Raises for empty ranges.
    """
    if n_values < 1:
        raise ConfigurationError(
            f"field must have at least one value, got range size {n_values}"
        )
    return (n_values - 1).bit_length()


def check_packed_fields(
    fields: dict[str, int], *, carrier_bits: int, context: str
) -> None:
    """Guard a packed layout: the named field widths must fit the carrier.

    Parameters
    ----------
    fields:
        Mapping of field name to width in bits (e.g.
        ``{"queue_len": 44, "tie": 20}``).  Order is documentation only;
        widths are summed.
    carrier_bits:
        Value bits of the carrier integer (:data:`INT32_VALUE_BITS` or
        :data:`INT64_VALUE_BITS`).
    context:
        Short description of the packing site for the error message.

    Raises
    ------
    ConfigurationError
        When the fields overflow the carrier — the failure mode this guard
        exists to make loud (a wrapped high field silently corrupts every
        downstream argmin).
    """
    for name, bits in fields.items():
        if bits < 0:
            raise ConfigurationError(
                f"{context}: field {name!r} has negative width {bits}"
            )
    total = sum(fields.values())
    if total > carrier_bits:
        detail = " + ".join(f"{name}:{bits}" for name, bits in fields.items())
        raise ConfigurationError(
            f"{context}: packed fields ({detail} = {total} bits) overflow "
            f"the {carrier_bits}-bit carrier; reduce the widest field or "
            "use a wider carrier"
        )


def select_tie_bits(
    bins_p: int,
    *,
    preferred: int,
    minimum: int,
    address_bits: int,
) -> int | None:
    """Largest tie width that still leaves room for the candidate index.

    The placement layout splits ``address_bits`` between the tie key and
    the flat candidate index.  Starting from ``preferred`` tie bits, the
    width is traded down (never below ``minimum``) until ``bins_p``
    addresses fit the remaining bits; returns ``None`` when even the
    minimum width leaves too little address space.
    """
    tie_bits = preferred
    while bins_p > (1 << (address_bits - tie_bits)):
        if tie_bits > minimum:
            tie_bits -= 1
        else:
            return None
    return tie_bits


def pack_key(
    load: int, tie: int, cidx: int, *, tie_bits: int, cidx_bits: int
) -> int:
    """Reference packing: ``load << (tie_bits+cidx_bits) | tie << cidx_bits | cidx``.

    Checks every field against its width (the fast kernels skip these
    checks; tests use this to pin the semantics).
    """
    for name, value, bits in (
        ("tie", tie, tie_bits),
        ("cidx", cidx, cidx_bits),
    ):
        if value < 0 or value >> bits:
            raise ConfigurationError(
                f"packed field {name!r}={value} does not fit {bits} bits"
            )
    if load < 0:
        raise ConfigurationError(f"load must be non-negative, got {load}")
    return (load << (tie_bits + cidx_bits)) | (tie << cidx_bits) | cidx


def unpack_key(key: int, *, tie_bits: int, cidx_bits: int) -> tuple[int, int, int]:
    """Inverse of :func:`pack_key`: ``(load, tie, cidx)``."""
    cidx = key & ((1 << cidx_bits) - 1)
    tie = (key >> cidx_bits) & ((1 << tie_bits) - 1)
    load = key >> (tie_bits + cidx_bits)
    return load, tie, cidx
