"""Optional Numba JIT tier for the hash-family kernels.

Compiles the two primitives of :mod:`repro.kernels.hash_schemes` —
simple-tabulation gather and pairwise affine over the Mersenne prime
``2^61 - 1`` — as ``@njit(cache=True)`` loops over the same flat-table /
limb-split layouts the numpy tier uses, so the tiers are **bit-identical**
(asserted in ``tests/kernels/test_hash_schemes.py`` whenever numba is
installed).  Every intermediate is kept explicitly ``uint64``: numba
promotes mixed uint64/int64 arithmetic to float64, which would silently
destroy exactness, so all constants are wrapped.

Numba is an optional dependency: importing this module never raises.
When the import fails, :data:`NUMBA_AVAILABLE` is ``False`` and
:mod:`repro.kernels.hash_schemes` stays on the numpy tier (the shared
registry logs the ``backend-fallback`` event).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "NUMBA_AVAILABLE",
    "NUMBA_IMPORT_ERROR",
    "pairwise_u64",
    "tabulation_u64",
]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    NUMBA_AVAILABLE = True
    NUMBA_IMPORT_ERROR: Exception | None = None
except Exception as _exc:  # ImportError, or a broken install
    njit = None
    NUMBA_AVAILABLE = False
    NUMBA_IMPORT_ERROR = _exc


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed

    @njit(cache=True)
    def tabulation_u64(keys: np.ndarray, flat: np.ndarray,
                       out: np.ndarray) -> None:
        """Simple tabulation: eight table loads XOR-folded per key."""
        mask = np.uint64(0xFF)
        for i in range(keys.shape[0]):
            x = keys[i]
            acc = np.uint64(0)
            for c in range(8):
                acc ^= flat[np.uint64(c * 256) + ((x >> np.uint64(8 * c)) & mask)]
            out[i] = acc

    @njit(cache=True)
    def pairwise_u64(keys: np.ndarray, a: np.uint64, b: np.uint64,
                     out: np.ndarray) -> None:
        """Exact ``(a·x + b) mod (2^61-1)`` via 32-bit limb splitting.

        Same derivation as the numpy tier
        (:func:`repro.kernels.hash_schemes._pairwise_numpy`): cross
        terms re-enter through ``2^64 ≡ 8 (mod p)`` and
        ``2^32 = 2^61 / 2^29``, every intermediate below 2^63.
        """
        p = np.uint64((1 << 61) - 1)
        sh61 = np.uint64(61)
        sh32 = np.uint64(32)
        sh29 = np.uint64(29)
        mask32 = np.uint64((1 << 32) - 1)
        mask29 = np.uint64((1 << 29) - 1)
        a_hi = a >> sh32
        a_lo = a & mask32
        for i in range(keys.shape[0]):
            x = keys[i]
            x = (x >> sh61) + (x & p)
            x = (x >> sh61) + (x & p)
            if x >= p:
                x -= p
            x_hi = x >> sh32
            x_lo = x & mask32
            term1 = (a_hi * x_hi) << np.uint64(3)
            mid = a_hi * x_lo + a_lo * x_hi
            term2 = (mid >> sh29) + ((mid & mask29) << sh32)
            t3 = a_lo * x_lo
            term3 = (t3 >> sh61) + (t3 & p)
            total = term1 + term2 + term3 + b
            total = (total >> sh61) + (total & p)
            total = (total >> sh61) + (total & p)
            if total >= p:
                total -= p
            out[i] = total

else:  # pragma: no cover - the numpy tier handles everything

    def tabulation_u64(keys, flat, out):  # noqa: D103 - unreachable stub
        raise RuntimeError("numba is not available") from NUMBA_IMPORT_ERROR

    def pairwise_u64(keys, a, b, out):  # noqa: D103 - unreachable stub
        raise RuntimeError("numba is not available") from NUMBA_IMPORT_ERROR
