"""Reference implementations: the executable spec the kernels must match.

Two layers live here:

- :func:`place_ball` / :func:`simulate_single_trial` — the paper process
  written as a plain loop with small numpy calls.  This is the *reference
  backend* of the kernel subsystem: deliberately scalar, bit-stable across
  releases (``tests/data/golden_reference.json`` pins its outputs), and
  the distributional ground truth the vectorized backends are tested
  against.  Re-exported by :mod:`repro.core.balls_bins`, its historical
  home.
- :func:`sequential_packed_reference` — a pure-Python walk of the *packed*
  candidate arrays of :mod:`repro.kernels.generate`, used by the kernel
  test suite to assert that the fused numpy backend (and numba, when
  present) is bit-identical to sequential placement on the same draws.
- :func:`simulate_supermarket_reference` — the supermarket CTMC written
  as the plainest possible event loop over the draw-stream contract of
  :mod:`repro.kernels.supermarket`.  ``tests/data/golden_supermarket.json``
  pins its outputs, and every supermarket backend is asserted bit-identical
  to it for the same seed.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.errors import ConfigurationError, StabilityError
from repro.hashing.base import ChoiceScheme
from repro.kernels.blockrng import (
    CHOICE_BLOCK,
    EVENT_BLOCK,
    TIE_BITS,
    BlockedDraws,
    refill_choice_block,
    refill_event_block,
)
from repro.kernels.generate import KernelLayout
from repro.kernels.supermarket import (
    SupermarketStats,
    check_queue_packing,
    finalize_stats,
    stability_message,
    validate_supermarket_args,
)
from repro.rng import default_generator
from repro.types import LoadDistribution, QueueingResult

__all__ = [
    "TieBreak",
    "place_ball",
    "sequential_packed_reference",
    "simulate_single_trial",
    "simulate_supermarket_reference",
]

TieBreak = Literal["random", "left"]


def place_ball(
    loads: np.ndarray,
    choices: np.ndarray,
    rng: np.random.Generator,
    tie_break: TieBreak = "random",
) -> int:
    """Place one ball given its candidate bins; return the chosen bin.

    Mutates ``loads`` in place.  With ``tie_break="random"`` the least-loaded
    candidate is chosen uniformly among ties; with ``"left"`` the leftmost
    (lowest index *within the choice vector*) wins, which is Vöcking's rule
    when the choice vector is ordered across subtables.
    """
    candidate_loads = loads[choices]
    least = candidate_loads.min()
    ties = np.flatnonzero(candidate_loads == least)
    if tie_break == "left" or ties.size == 1:
        pick = ties[0]
    else:
        pick = ties[int(rng.integers(0, ties.size))]
    chosen = int(choices[pick])
    loads[chosen] += 1
    return chosen


def simulate_single_trial(
    scheme: ChoiceScheme,
    n_balls: int,
    *,
    seed: int | np.random.Generator | None = None,
    tie_break: TieBreak = "random",
    return_loads: bool = False,
) -> LoadDistribution | np.ndarray:
    """Throw ``n_balls`` balls using ``scheme``; return the load distribution.

    Parameters
    ----------
    scheme:
        Choice generator; its ``n_bins`` defines the table size.
    n_balls:
        Number of balls to place sequentially.
    seed:
        Seed or generator for all randomness (choices and tie-breaking).
    tie_break:
        ``"random"`` (paper's standard scheme) or ``"left"`` (Vöcking).
    return_loads:
        If True, return the raw per-bin load vector instead of the
        aggregated :class:`~repro.types.LoadDistribution`.
    """
    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")
    rng = default_generator(seed)
    loads = np.zeros(scheme.n_bins, dtype=np.int64)
    for _ in range(n_balls):
        choices = scheme.single(rng)
        place_ball(loads, choices, rng, tie_break)
    if return_loads:
        return loads
    max_load = int(loads.max(initial=0))
    counts = np.bincount(loads, minlength=max_load + 1)
    return LoadDistribution(
        n_bins=scheme.n_bins,
        n_balls=n_balls,
        trials=1,
        counts=counts,
        max_load_per_trial=np.array([max_load]),
    )


def simulate_supermarket_reference(
    scheme: ChoiceScheme,
    lam: float,
    sim_time: float,
    *,
    burn_in: float = 0.0,
    seed: int | np.random.Generator | None = None,
    max_total_jobs: int | None = None,
    track_tails: bool = False,
    tie_break: TieBreak = "random",
) -> QueueingResult:
    """Supermarket CTMC as the plainest event loop — the executable spec.

    Implements the draw-stream contract of :mod:`repro.kernels.blockrng`
    (and the state-evolution contract of
    :mod:`repro.kernels.supermarket`) one event at a time through
    :class:`~repro.kernels.blockrng.BlockedDraws` — the executable form of
    the contract, with no performance tricks.  Every backend reachable
    through :func:`repro.kernels.run_supermarket_kernel` must be
    bit-identical to this function for the same seed, *and* leave the
    generator in the same state (callers reuse one generator across
    sequential runs).
    """
    validate_supermarket_args(lam, sim_time, burn_in, tie_break)
    rng = default_generator(seed)
    n = scheme.n_bins
    if max_total_jobs is None:
        max_total_jobs = 50 * n
    check_queue_packing(max_total_jobs)
    left_ties = tie_break == "left"
    arrival_rate = lam * n

    queue_len = np.zeros(n, dtype=np.int64)
    fifos: list[list[float]] = [[] for _ in range(n)]
    busy: list[int] = []  # dense busy slots; departures sample an index

    now = 0.0
    jobs = 0
    s_count = 0
    s_sum = 0.0
    area = 0.0
    busy_area = 0.0
    n_arrivals = 0
    n_departures = 0

    if track_tails:
        counts = np.zeros(64, dtype=np.int64)
        counts[0] = n
        tail_area = np.zeros(64, dtype=np.float64)
        last_t = np.zeros(64, dtype=np.float64)

    def _flush_level(lev: int, t: float) -> None:
        start = max(float(last_t[lev]), burn_in)
        if t > start:
            tail_area[lev] += counts[lev] * (t - start)
        last_t[lev] = t

    # Cursors start exhausted and refill lazily — the block contract of
    # repro.kernels.blockrng, consumed through its reference cursor.
    events = BlockedDraws(EVENT_BLOCK, lambda: refill_event_block(rng))
    arrivals = BlockedDraws(CHOICE_BLOCK, lambda: refill_choice_block(scheme, rng))

    while True:
        b = len(busy)
        rate = arrival_rate + b
        expo, event_u = events.take()
        t_new = now + expo / rate
        if t_new >= sim_time:
            break  # terminating event is never committed
        x = event_u * rate
        start = max(now, burn_in)
        if t_new > start:
            dt = t_new - start
            area += jobs * dt
            busy_area += b * dt
        now = t_new
        if x < arrival_rate:  # arrival
            choices, tie_keys = arrivals.take()
            lengths = queue_len[choices]
            if left_ties:
                target = int(choices[np.argmin(lengths)])
            else:
                keys = (lengths << TIE_BITS) | tie_keys
                target = int(choices[np.argmin(keys)])
            fifos[target].append(now)
            if queue_len[target] == 0:
                busy.append(target)
            queue_len[target] += 1
            jobs += 1
            n_arrivals += 1
            if track_tails:
                new_len = int(queue_len[target])
                if new_len + 1 >= len(counts):
                    counts = np.concatenate([counts, np.zeros_like(counts)])
                    tail_area = np.concatenate(
                        [tail_area, np.zeros_like(tail_area)]
                    )
                    last_t = np.concatenate([last_t, np.zeros_like(last_t)])
                _flush_level(new_len - 1, now)
                _flush_level(new_len, now)
                counts[new_len - 1] -= 1
                counts[new_len] += 1
            if jobs > max_total_jobs:
                raise StabilityError(stability_message(max_total_jobs, now))
        else:  # departure: x - arrival_rate is uniform on [0, b)
            slot = int(x - arrival_rate)
            if slot >= b:
                slot = b - 1
            q = busy[slot]
            t_arr = fifos[q].pop(0)
            if t_arr >= burn_in:
                s_count += 1
                s_sum += now - t_arr
            queue_len[q] -= 1
            if queue_len[q] == 0:  # swap-remove busy slot
                busy[slot] = busy[-1]
                busy.pop()
            jobs -= 1
            n_departures += 1
            if track_tails:
                old_len = int(queue_len[q]) + 1
                _flush_level(old_len - 1, now)
                _flush_level(old_len, now)
                counts[old_len] -= 1
                counts[old_len - 1] += 1

    start = max(now, burn_in)
    if sim_time > start:
        dt = sim_time - start
        area += jobs * dt
        busy_area += len(busy) * dt
    tails_out = None
    if track_tails:
        for lev in range(len(counts)):
            _flush_level(lev, sim_time)
        tails_out = tail_area
    stats = SupermarketStats(
        s_count=s_count,
        s_sum=float(s_sum),
        area=float(area),
        busy_area=float(busy_area),
        n_arrivals=n_arrivals,
        n_departures=n_departures,
        tail_area=tails_out,
    )
    return finalize_stats(stats, n=n, sim_time=sim_time, burn_in=burn_in)


def sequential_packed_reference(
    pc: np.ndarray, layout: KernelLayout
) -> np.ndarray:
    """Sequentially place the packed candidates of ``pc``; return loads.

    Pure-Python oracle for the kernel backends: same key semantics
    (minimum of ``load << key_shift | packed`` with first-minimum ties),
    one ball at a time.  Returns the ``(trials, n_bins)`` int64 load table.
    """
    d, trials, steps_p = pc.shape
    steps = steps_p - 1
    bins_p = layout.bins_p
    mask = int(layout.cidx_mask)
    key_shift = layout.key_shift
    loads = np.zeros(trials * bins_p, dtype=np.int64)
    for t in range(trials):
        for b in range(steps):
            best_key = None
            best_ci = -1
            for j in range(d):
                p = int(pc[j, t, b])
                ci = p & mask
                key = (int(loads[ci]) << key_shift) + p
                if best_key is None or key < best_key:
                    best_key = key
                    best_ci = ci
            loads[best_ci] += 1
    return loads.reshape(trials, bins_p)[:, : layout.n_bins]
