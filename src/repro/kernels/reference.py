"""Reference implementations: the executable spec the kernels must match.

Two layers live here:

- :func:`place_ball` / :func:`simulate_single_trial` — the paper process
  written as a plain loop with small numpy calls.  This is the *reference
  backend* of the kernel subsystem: deliberately scalar, bit-stable across
  releases (``tests/data/golden_reference.json`` pins its outputs), and
  the distributional ground truth the vectorized backends are tested
  against.  Re-exported by :mod:`repro.core.balls_bins`, its historical
  home.
- :func:`sequential_packed_reference` — a pure-Python walk of the *packed*
  candidate arrays of :mod:`repro.kernels.generate`, used by the kernel
  test suite to assert that the fused numpy backend (and numba, when
  present) is bit-identical to sequential placement on the same draws.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.base import ChoiceScheme
from repro.kernels.generate import KEY_SHIFT, KernelLayout
from repro.rng import default_generator
from repro.types import LoadDistribution

__all__ = [
    "TieBreak",
    "place_ball",
    "sequential_packed_reference",
    "simulate_single_trial",
]

TieBreak = Literal["random", "left"]


def place_ball(
    loads: np.ndarray,
    choices: np.ndarray,
    rng: np.random.Generator,
    tie_break: TieBreak = "random",
) -> int:
    """Place one ball given its candidate bins; return the chosen bin.

    Mutates ``loads`` in place.  With ``tie_break="random"`` the least-loaded
    candidate is chosen uniformly among ties; with ``"left"`` the leftmost
    (lowest index *within the choice vector*) wins, which is Vöcking's rule
    when the choice vector is ordered across subtables.
    """
    candidate_loads = loads[choices]
    least = candidate_loads.min()
    ties = np.flatnonzero(candidate_loads == least)
    if tie_break == "left" or ties.size == 1:
        pick = ties[0]
    else:
        pick = ties[int(rng.integers(0, ties.size))]
    chosen = int(choices[pick])
    loads[chosen] += 1
    return chosen


def simulate_single_trial(
    scheme: ChoiceScheme,
    n_balls: int,
    *,
    seed: int | np.random.Generator | None = None,
    tie_break: TieBreak = "random",
    return_loads: bool = False,
) -> LoadDistribution | np.ndarray:
    """Throw ``n_balls`` balls using ``scheme``; return the load distribution.

    Parameters
    ----------
    scheme:
        Choice generator; its ``n_bins`` defines the table size.
    n_balls:
        Number of balls to place sequentially.
    seed:
        Seed or generator for all randomness (choices and tie-breaking).
    tie_break:
        ``"random"`` (paper's standard scheme) or ``"left"`` (Vöcking).
    return_loads:
        If True, return the raw per-bin load vector instead of the
        aggregated :class:`~repro.types.LoadDistribution`.
    """
    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")
    rng = default_generator(seed)
    loads = np.zeros(scheme.n_bins, dtype=np.int64)
    for _ in range(n_balls):
        choices = scheme.single(rng)
        place_ball(loads, choices, rng, tie_break)
    if return_loads:
        return loads
    max_load = int(loads.max(initial=0))
    counts = np.bincount(loads, minlength=max_load + 1)
    return LoadDistribution(
        n_bins=scheme.n_bins,
        n_balls=n_balls,
        trials=1,
        counts=counts,
        max_load_per_trial=np.array([max_load]),
    )


def sequential_packed_reference(
    pc: np.ndarray, layout: KernelLayout
) -> np.ndarray:
    """Sequentially place the packed candidates of ``pc``; return loads.

    Pure-Python oracle for the kernel backends: same key semantics
    (minimum of ``load << 31 | packed`` with first-minimum ties), one ball
    at a time.  Returns the ``(trials, n_bins)`` int64 load table.
    """
    d, trials, steps_p = pc.shape
    steps = steps_p - 1
    bins_p = layout.bins_p
    mask = int(layout.cidx_mask)
    loads = np.zeros(trials * bins_p, dtype=np.int64)
    for t in range(trials):
        for b in range(steps):
            best_key = None
            best_ci = -1
            for j in range(d):
                p = int(pc[j, t, b])
                ci = p & mask
                key = (int(loads[ci]) << KEY_SHIFT) + p
                if best_key is None or key < best_key:
                    best_key = key
                    best_ci = ci
            loads[best_ci] += 1
    return loads.reshape(trials, bins_p)[:, : layout.n_bins]
