"""Parallel-trials placement: independent per-trial counter streams.

The chunked engine (:mod:`repro.core.runner`) parallelizes across
*processes*, with every trial of a chunk sharing one generator.  This
module is the giant-``n`` alternative: every trial owns an independent
counter-based RNG stream (:func:`repro.kernels.blockrng.trial_seed` →
splitmix64), so trials can run in any interleaving — a numba
``prange`` over trials inside one ``@njit(parallel=True)`` kernel, the
numpy fallback trial-by-trial, or process-pool chunks of either — and
produce **identical results** (*seed-equivalence*, pinned by
``tests/kernels/test_parallel_trials.py``).

Two execution paths, chosen by geometry alone:

- **Fused path** (:func:`fused_parallel_supported`): power-of-two
  double hashing with random ties.  Ball ``b`` of a trial consumes
  exactly two splitmix64 draws — counters ``2b`` and ``2b+1`` of the
  trial's stream: the first supplies ``f`` (``log2 n`` bits) and the odd
  stride ``g`` (``log2 n - 1`` bits), the second up to six 10-bit tie
  keys.  Placement compares ``load << key_shift | tie << cidx_bits |
  bin`` exactly like the packed kernels, so the numpy fallback reuses
  :class:`~repro.kernels.numpy_backend.NumpyBackend` on per-trial packed
  arrays while the numba kernel walks the same keys scalar-sequentially
  — bit-identical by the packed-kernel equivalence proof.
- **Generic path**: any other scheme/tie rule runs one
  :func:`~repro.core.vectorized.simulate_batch` call per trial, seeded
  with the trial's own ``SeedSequence`` child.  Slower, but the same
  per-trial stream on every host and backend.

Whether the decision lands fused or generic depends **only** on the
scheme type and geometry — never on numba availability or worker count —
so a run's results are a pure function of ``(root seed, spec)``.

Memory model (see ``docs/scale.md``): each in-flight trial owns one
O(``n_bins``) load table — the irreducible chain state — while
aggregation works on per-trial histograms whose auxiliary passes are
segmented into ``shards`` slices of the table, keeping scratch
O(``n_bins / shards``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.hashing.base import ChoiceScheme
from repro.hashing.double_hashing import DoubleHashingChoices
from repro.kernels.blockrng import splitmix64_block, trial_seed
from repro.kernels.generate import _RANDOM_TIE_BITS, KernelLayout
from repro.kernels.numba_backend import NUMBA_AVAILABLE, njit
from repro.kernels.numpy_backend import NumpyBackend, choose_window
from repro.rng.splitmix import _GAMMA, _MIX1, _MIX2

__all__ = [
    "PLACEMENT_TIE_BITS",
    "default_shards",
    "fused_parallel_supported",
    "run_parallel_trials",
]

#: Tie-key width of the parallel fused path (same as the packed layouts).
PLACEMENT_TIE_BITS = _RANDOM_TIE_BITS

#: Widest per-trial histogram the numba kernel records.  A max load at or
#: beyond this is impossible for any sane d >= 2 geometry and raises
#: SimulationError rather than truncating silently.
_HIST_CAP = 4096

#: Aggregation passes over a load table are segmented at this element
#: count: tables where ``n_bins * d`` stays within the historical int32
#: packed address space run unsharded by default.
_SHARD_ELEMENTS = 1 << 23

_U64 = np.uint64
_G = np.uint64(_GAMMA)
_M1 = np.uint64(_MIX1)
_M2 = np.uint64(_MIX2)


def default_shards(n_bins: int, d: int) -> int:
    """Shard count keeping each aggregation slice in the packed space.

    Stays at 1 until ``n_bins * d`` exceeds 2**23.
    """
    return max(1, -(-(n_bins * d) // _SHARD_ELEMENTS))


def fused_parallel_supported(scheme: ChoiceScheme, tie_break: str) -> bool:
    """Whether the two-draw fused counter-stream path applies.

    A pure function of scheme type and geometry — deliberately
    independent of numba availability, worker count, and chunking, so the
    fused/generic decision (and therefore every result bit) is identical
    on every host.
    """
    n = scheme.n_bins
    return (
        type(scheme) is DoubleHashingChoices
        and tie_break == "random"
        and n >= 2
        and n & (n - 1) == 0
        and scheme.d * PLACEMENT_TIE_BITS <= 64
    )


def _fused_layout(n: int, d: int) -> KernelLayout:
    """The shared packed layout of the fused path (both backends)."""
    cidx_bits = n.bit_length()  # bins_p = n + 1 values, n = 2**lb
    return KernelLayout(
        n_bins=n,
        d=d,
        tie_break="random",
        tie_bits=PLACEMENT_TIE_BITS,
        cidx_bits=cidx_bits,
        trial_chunk=1,
        key_shift=PLACEMENT_TIE_BITS + cidx_bits,
        wide=True,
    )


def _sharded_histogram(loads: np.ndarray, shards: int) -> np.ndarray:
    """Histogram of one trial's load table, in O(n/shards) slices."""
    n = loads.shape[0]
    seg = max(1, -(-n // shards))
    hist = np.zeros(1, np.int64)
    for s0 in range(0, n, seg):
        part = np.bincount(loads[s0 : s0 + seg])
        if part.size > hist.size:
            part[: hist.size] += hist
            hist = part
        else:
            hist[: part.size] += part
    return hist


def _stack_rows(rows: list[np.ndarray], trials: int) -> np.ndarray:
    """Pad per-trial histogram rows to a common width and stack them."""
    width = max((r.size for r in rows), default=1)
    out = np.zeros((trials, width), np.int64)
    for i, row in enumerate(rows):
        out[i, : row.size] = row
    return out


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed
    from numba import prange

    @njit(cache=True)
    def _splitmix_at(seed: np.uint64, ctr: np.uint64) -> np.uint64:
        # Draw `ctr - 1` of the stream: mix64(seed + ctr * GAMMA), the
        # scalar twin of blockrng.splitmix64_block (ctr is 1-based).
        z = seed + ctr * _G
        z = (z ^ (z >> _U64(30))) * _M1
        z = (z ^ (z >> _U64(27))) * _M2
        return z ^ (z >> _U64(31))

    @njit(cache=True, parallel=True)
    def _fused_trials_numba(
        keys, n, d, n_balls, lb, tie_bits, cidx_bits, key_shift, hist, maxima
    ):
        n_mask = _U64(n - 1)
        half_mask = _U64(n // 2 - 1)
        tie_mask = _U64((1 << tie_bits) - 1)
        hist_cap = hist.shape[1]
        nm1 = np.int64(n - 1)
        for t in prange(keys.shape[0]):
            key = keys[t]
            loads = np.zeros(n, np.int64)
            for b in range(n_balls):
                ra = _splitmix_at(key, _U64(2 * b + 1))
                rb = _splitmix_at(key, _U64(2 * b + 2))
                f = np.int64(ra & n_mask)
                g = np.int64((ra >> _U64(lb)) & half_mask) * 2 + 1
                cur = f
                best_key = np.int64(0x7FFFFFFFFFFFFFFF)
                best = np.int64(0)
                for j in range(d):
                    if j:
                        cur = (cur + g) & nm1  # (f + j*g) mod 2**lb
                    tie = np.int64((rb >> _U64(j * tie_bits)) & tie_mask)
                    k = (loads[cur] << key_shift) | (tie << cidx_bits) | cur
                    if k < best_key:
                        best_key = k
                        best = cur
                loads[best] += 1
            mx = np.int64(0)
            for i in range(n):
                v = loads[i]
                if v > mx:
                    mx = v
                if v < hist_cap:
                    hist[t, v] += 1
            maxima[t] = mx


def _fused_trial_numpy(
    key: int,
    scheme: ChoiceScheme,
    n_balls: int,
    layout: KernelLayout,
    impl,
    ws,
    work: np.ndarray,
    block: int,
) -> None:
    """One trial of the fused path via the packed numpy kernel.

    Generates the packed candidates from the trial's splitmix64 counter
    stream (vectorized, superblocks of ``block`` balls) and places them
    with the out-of-order commit kernel — bit-identical to the scalar
    numba walk of the same keys.
    """
    n = layout.n_bins
    d = layout.d
    lb = n.bit_length() - 1
    n_mask = _U64(n - 1)
    half_mask = _U64(n // 2 - 1)
    tie_mask = _U64((1 << PLACEMENT_TIE_BITS) - 1)
    work[:] = 0
    for b0 in range(0, n_balls, block):
        steps = min(block, n_balls - b0)
        raws = splitmix64_block(key, 2 * b0, 2 * steps)
        ra = raws[0::2]
        rb = raws[1::2]
        f = (ra & n_mask).astype(np.int64)
        g = ((ra >> _U64(lb)) & half_mask).astype(np.int64)
        g += g
        g += 1
        pc = np.empty((d, 1, steps + 1), np.int64)
        pc[:, 0, steps] = n  # dummy ball -> dummy bin
        cur = f
        for j in range(d):
            if j:
                cur += g
                cur &= n - 1
            tie = ((rb >> _U64(j * PLACEMENT_TIE_BITS)) & tie_mask).astype(
                np.int64
            )
            pc[j, 0, :steps] = (tie << layout.cidx_bits) | cur
        impl.place(work, pc, layout=layout, workspace=ws)


def run_parallel_trials(
    scheme: ChoiceScheme,
    n_balls: int,
    trials: int,
    *,
    root: int,
    trial_offset: int = 0,
    tie_break: str = "random",
    block: int = 4096,
    backend: str | None = None,
    shards: int | None = None,
    metrics=None,
) -> np.ndarray:
    """Run ``trials`` trials on independent per-trial streams.

    Trial ``i`` (globally indexed ``trial_offset + i``) draws from the
    stream keyed by ``trial_seed(root, trial_offset + i)`` — results
    depend only on ``(root, global index)``, never on chunking, backend,
    or host.  Returns the ``(trials, width)`` per-trial histogram matrix
    (the engine transport format; feed to
    :meth:`repro.core.stats.StreamingLoadAggregator.update_histograms`).

    Parameters
    ----------
    scheme, n_balls, tie_break, block:
        As in :func:`~repro.core.vectorized.simulate_batch`.
    root:
        Root entropy shared by every chunk of the run (resolve ``None``
        seeds to a concrete integer *before* fanning out).
    trial_offset:
        Global index of this chunk's first trial.
    backend:
        ``"numba"`` runs the fused trials inside one
        ``@njit(parallel=True)`` prange kernel; ``"numpy"`` (or a numba
        fallback) runs them trial-by-trial through the packed kernel.
        Results are identical either way.
    shards:
        Aggregation-slice count (``None`` = :func:`default_shards`); the
        histogram passes touch O(n_bins / shards) elements at a time.
    metrics:
        Optional :class:`~repro.metrics.MetricsRegistry`.
    """
    from repro.kernels import kernel_metrics, resolve_backend

    if n_balls < 0:
        raise ConfigurationError(f"n_balls must be non-negative, got {n_balls}")
    if trials < 1:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if trial_offset < 0:
        raise ConfigurationError(
            f"trial_offset must be non-negative, got {trial_offset}"
        )
    if tie_break not in ("random", "left"):
        raise ConfigurationError(
            f"tie_break must be 'random' or 'left', got {tie_break!r}"
        )
    if shards is not None and shards < 1:
        raise ConfigurationError(f"shards must be positive, got {shards}")
    n = scheme.n_bins
    d = scheme.d
    if shards is None:
        shards = default_shards(n, d)
    registry = metrics if metrics is not None else kernel_metrics()
    impl = resolve_backend(backend, metrics=metrics)

    if fused_parallel_supported(scheme, tie_break):
        layout = _fused_layout(n, d)
        lb = n.bit_length() - 1
        load_cap = min(_HIST_CAP, 1 << layout.load_bits)
        keys = np.empty(trials, np.uint64)
        for i in range(trials):
            keys[i] = trial_seed(root, trial_offset + i)
        if impl.name == "numba":
            hist = np.zeros((trials, _HIST_CAP), np.int64)
            maxima = np.zeros(trials, np.int64)
            with registry.timer("kernel.parallel_trials_seconds"):
                _fused_trials_numba(
                    keys,
                    n,
                    d,
                    n_balls,
                    lb,
                    PLACEMENT_TIE_BITS,
                    layout.cidx_bits,
                    layout.key_shift,
                    hist,
                    maxima,
                )
            top = int(maxima.max(initial=0))
            if top >= load_cap:
                raise SimulationError(
                    f"per-trial max load {top} exceeds the fused parallel "
                    f"path's load budget ({load_cap}); results discarded"
                )
            out = np.ascontiguousarray(hist[:, : top + 1])
        else:
            bins_p = layout.bins_p
            window = choose_window(n, d)
            numpy_impl = impl if isinstance(impl, NumpyBackend) else NumpyBackend()
            ws = numpy_impl.make_workspace(
                d=d, trials=1, window=window, bins_p=bins_p, dtype=layout.dtype
            )
            work = np.zeros(bins_p, np.int32)
            rows = []
            with registry.timer("kernel.parallel_trials_seconds"):
                for i in range(trials):
                    _fused_trial_numpy(
                        int(keys[i]), scheme, n_balls, layout, numpy_impl,
                        ws, work, block,
                    )
                    table = work[:n]
                    top = int(table.max(initial=0))
                    if top >= load_cap:
                        raise SimulationError(
                            f"per-trial max load {top} exceeds the fused "
                            f"parallel path's load budget ({load_cap}); "
                            "results discarded"
                        )
                    rows.append(_sharded_histogram(table, shards))
            out = _stack_rows(rows, trials)
    else:
        from repro.core.vectorized import simulate_batch

        rows = []
        with registry.timer("kernel.parallel_trials_seconds"):
            for i in range(trials):
                ss = np.random.SeedSequence(
                    entropy=root, spawn_key=(trial_offset + i,)
                )
                batch = simulate_batch(
                    scheme,
                    n_balls,
                    1,
                    seed=np.random.default_rng(ss),
                    tie_break=tie_break,
                    block=block,
                    backend=backend,
                    metrics=metrics,
                )
                rows.append(_sharded_histogram(batch.loads[0], shards))
        out = _stack_rows(rows, trials)

    registry.increment("kernel.parallel_trials", trials)
    registry.increment(f"kernel.calls.parallel-{impl.name}", 1)
    return out
