"""Vectorized open-addressed assignment-map kernel (int64 key -> int32 bin).

The service layer's key->bin assignment used to live in a Python dict
walked one key at a time — the only per-key interpreted loop left on a
hot path.  This module replaces it with the paper's own medicine: a flat
double-hashed open-addressed table (probe sequence ``start + t*stride``
with an odd stride from one splitmix64 pass, see
:mod:`repro.hashing.probe`) with fully batched operations:

- ``insert_many(keys, values)`` — *set-default* semantics in batch
  order: a key already present keeps its stored value (returned), an
  absent key is inserted (``-1`` returned).  Duplicate keys inside one
  batch behave exactly as if processed sequentially.
- ``delete_many(keys)`` — tombstone deletion; returns the freed value or
  ``-1`` per key, again with exact sequential batch semantics.
- ``lookup_many(keys)`` — stored value or ``-1`` per key.

Three backends share the registry idiom (explicit argument >
``REPRO_BACKEND`` env > auto):

- ``"reference"`` — the demoted dict path (:class:`ReferenceKeyMap`),
  the semantics oracle every other backend is tested exactly equal to;
- ``"numpy"`` — cohort probe rounds: hash all unresolved keys, gather
  the probed slots, resolve hits, claim empty slots by scatter with a
  rare same-key ordering fixup, advance the survivors;
- ``"numba"`` / ``"numba-parallel"`` — a JIT straight probe loop
  (:mod:`repro.kernels.numba_keymap`); the parallel variant runs
  lookups under ``prange``.  Falls back to numpy with a logged
  ``backend-fallback`` event when numba is not importable.

Capacity is negotiated per batch: the table rehashes (amortized, counted
under ``keymap.rehashes``) whenever live + tombstone + incoming slots
would exceed ``MAX_FILL`` of capacity, sizing the new power-of-two table
so the post-rehash fill is at most ``GROW_FILL``.  Tombstones are *not*
reused by inserts — rehash purges them — which keeps every backend's
slot bookkeeping identical in count.

Observable behavior (returned arrays, mapping contents, live/tombstone
counts) is exactly equal across all backends for any operation stream;
the physical slot *layout* may differ between the cohort and sequential
execution orders, which is invisible through the API and safe because
every backend maintains the open-addressing reachability invariant.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.probe import DEFAULT_PROBE_SEED, probe_start_stride
from repro.kernels import numba_keymap as _njm
from repro.metrics import MetricsRegistry, global_registry

__all__ = [
    "EMPTY",
    "GROW_FILL",
    "KNOWN_KEYMAP_BACKENDS",
    "MAX_FILL",
    "MIN_CAP_BITS",
    "NOT_FOUND",
    "TOMBSTONE",
    "KeyMap",
    "ReferenceKeyMap",
    "available_keymap_backends",
    "make_keymap",
    "resolve_keymap_backend",
]

#: Slot-state sentinels in the value array (stored bins are >= 0).
EMPTY = np.int32(-1)
TOMBSTONE = np.int32(-2)

#: API sentinel: returned for absent keys and for fresh inserts.
NOT_FOUND = -1

#: Rehash when (live + tombstones + incoming) would exceed this fill.
MAX_FILL = 0.7
#: Post-rehash target fill: capacity is the smallest power of two with
#: (live + incoming) <= GROW_FILL * capacity.
GROW_FILL = 0.4
#: Smallest table: 2**MIN_CAP_BITS slots.
MIN_CAP_BITS = 6

KNOWN_KEYMAP_BACKENDS = ("reference", "numpy", "numba", "numba-parallel")

_ENV_VAR = "REPRO_BACKEND"
_I32_MAX = np.iinfo(np.int32).max


def available_keymap_backends() -> tuple[str, ...]:
    """Keymap backend names importable in this process."""
    if _njm.NUMBA_AVAILABLE:
        return KNOWN_KEYMAP_BACKENDS
    return ("reference", "numpy")


def resolve_keymap_backend(
    name: str | None = None, *, metrics: MetricsRegistry | None = None
) -> str:
    """Resolve a keymap backend name: explicit > ``REPRO_BACKEND`` > auto.

    Mirrors :func:`repro.kernels.resolve_backend`: requesting a numba
    tier where numba is not importable degrades to ``"numpy"`` and logs
    a ``backend-fallback`` event (to ``metrics`` when given, and always
    to the global registry); unknown names raise
    :class:`~repro.errors.ConfigurationError`.
    """
    source = "explicit"
    if name is None:
        name = os.environ.get(_ENV_VAR) or None
        source = "env"
    if name is None:
        return "numba" if _njm.NUMBA_AVAILABLE else "numpy"
    name = name.strip().lower()
    if name not in KNOWN_KEYMAP_BACKENDS:
        raise ConfigurationError(
            f"unknown keymap backend {name!r}; known: "
            f"{', '.join(KNOWN_KEYMAP_BACKENDS)}"
        )
    if name.startswith("numba") and not _njm.NUMBA_AVAILABLE:
        fields = dict(
            requested=name,
            using="numpy",
            source=source,
            error=repr(_njm.NUMBA_IMPORT_ERROR),
        )
        global_registry().event("backend-fallback", **fields)
        if metrics is not None and metrics is not global_registry():
            metrics.event("backend-fallback", **fields)
        return "numpy"
    return name


def make_keymap(
    *,
    expected: int = 0,
    backend: str | None = None,
    metrics: MetricsRegistry | None = None,
    probe_seed: int = DEFAULT_PROBE_SEED,
):
    """Build a keymap through the backend registry.

    ``backend="reference"`` returns the dict oracle
    (:class:`ReferenceKeyMap`); every other name returns a flat-array
    :class:`KeyMap` running that kernel tier.  ``expected`` presizes
    capacity for that many live keys (still grows on demand).
    """
    resolved = resolve_keymap_backend(backend, metrics=metrics)
    if resolved == "reference":
        return ReferenceKeyMap(metrics=metrics)
    return KeyMap(
        expected=expected,
        backend=resolved,
        metrics=metrics,
        probe_seed=probe_seed,
    )


def _as_keys(keys) -> np.ndarray:
    """Normalize a key batch to a contiguous 1-D int64 array."""
    arr = np.asarray(keys)
    if arr.ndim != 1:
        raise ConfigurationError(
            f"keys must be a 1-D array, got shape {arr.shape}"
        )
    if arr.dtype != np.int64:
        arr = arr.astype(np.int64)
    if arr.size > _I32_MAX:
        raise ConfigurationError("key batches are limited to 2^31 - 1 keys")
    return np.ascontiguousarray(arr)


def _as_vals(values, n_keys: int) -> np.ndarray:
    """Normalize a value batch to int32 in ``[0, 2^31)``."""
    arr = np.asarray(values)
    if arr.shape != (n_keys,):
        raise ConfigurationError(
            f"values must have shape ({n_keys},), got {arr.shape}"
        )
    if arr.size and (int(arr.min()) < 0 or int(arr.max()) > _I32_MAX):
        raise ConfigurationError(
            "keymap values must be non-negative 31-bit integers "
            "(negative sentinels are reserved for slot states)"
        )
    return np.ascontiguousarray(arr, dtype=np.int32)


def _cap_bits_for(needed: int) -> int:
    """Smallest capacity exponent with ``needed <= GROW_FILL * 2**bits``."""
    bits = MIN_CAP_BITS
    while needed > GROW_FILL * (1 << bits):
        bits += 1
    if bits > 31:
        raise ConfigurationError(
            f"keymap cannot address {needed} live keys (2^31-slot ceiling)"
        )
    return bits


# ---------------------------------------------------------------------------
# numpy cohort kernels
# ---------------------------------------------------------------------------
#
# Claim protocol: a probe round gathers the slots of every unresolved
# key, resolves hits (reinserts / found deletes), and lets the keys that
# landed on usable slots *claim* them by scattering their batch index
# into the claim scratch.  NumPy fancy assignment stores the LAST value
# written for a repeated index (documented in the indexing guide, and
# pinned by a canary test in tests/kernels/test_keymap.py), so
# scattering in REVERSE batch order makes the EARLIEST occurrence win —
# exactly the sequential/dict winner, which is what makes duplicate keys
# inside one batch behave bit-identically to the oracle without any
# per-slot reduction pass.


def _insert_fresh_numpy(tkeys, tvals, cap_bits, keys, vals, claim, probe_seed):
    """Batch insert into a known-empty table.  Returns (prev, stats).

    Duplicate keys share a probe sequence, so they move in lockstep:
    whenever one occurrence *wins* a slot, its twins contend for that
    same slot in that same round and resolve against it immediately.
    A survivor therefore never probes an occupied slot holding its own
    key — hit tests (and their int64 key gathers) vanish from every
    round.  Duplicates can still travel together when a third key wins
    their slot, so each round keeps the full reversed-claim protocol.

    Because neither table array is *read* for keys or values during the
    loop (only the empty/occupied distinction matters), the value table
    itself serves as the claim array: rounds scatter winner **batch
    indexes** into ``tvals`` (one reversed scatter + one gather per
    round instead of three scatters + one gather), and a final fixup
    pass — sequential writes, the slots come out of ``flatnonzero``
    sorted — converts winner indexes into the stored keys and values.
    ``claim`` is accepted for signature symmetry but unused.
    """
    del claim
    mask = np.int32((1 << cap_bits) - 1)
    n = keys.size
    cur, stride = probe_start_stride(keys, cap_bits, probe_seed)
    prev = np.full(n, NOT_FOUND, dtype=np.int64)
    idx = np.arange(n, dtype=np.int32)
    kk = keys
    probes = 0
    rounds = 0
    first = True
    while cur.size:
        rounds += 1
        probes += cur.size
        if first:
            e_sel = None
            ecur, ekk, eidx = cur, kk, idx
            first = False
        else:
            e_sel = np.flatnonzero(tvals.take(cur) == EMPTY)
            ecur = cur[e_sel]
            ekk = kk[e_sel]
            eidx = idx[e_sel]
        if ecur.size:
            rv = slice(None, None, -1)
            tvals[ecur[rv]] = eidx[rv]
            w = tvals.take(ecur)
            ewin = w == eidx
            eres = ewin
            elose = ~ewin
            if elose.any():
                l_sel = np.flatnonzero(elose)
                wi = w[l_sel]
                samek = keys.take(wi) == ekk[l_sel]
                if samek.any():
                    s_sel = l_sel[samek]
                    prev[eidx[s_sel]] = vals.take(w[s_sel])
                    eres[s_sel] = True
        else:
            eres = None
        if e_sel is None:
            res = eres
        else:
            res = np.zeros(cur.size, dtype=bool)
            if eres is not None:
                res[e_sel] = eres
        sel = np.flatnonzero(~res)
        if sel.size == 0:
            break
        stride = stride.take(sel)
        cur = (cur.take(sel) + stride) & mask
        idx = idx.take(sel)
        kk = kk.take(sel)
    # Fixup: every occupied slot holds its winner's batch index; convert
    # to the stored key/value in sorted-slot (sequential-write) order.
    slots = np.flatnonzero(tvals != EMPTY)
    widx = tvals.take(slots)
    tkeys[slots] = keys.take(widx)
    tvals[slots] = vals.take(widx)
    return prev, int(slots.size), probes, rounds


def _insert_numpy(tkeys, tvals, cap_bits, keys, vals, claim, probe_seed):
    """Cohort-probe batch insert (set-default).  Returns (prev, stats)."""
    mask = np.int32((1 << cap_bits) - 1)
    n = keys.size
    cur, stride = probe_start_stride(keys, cap_bits, probe_seed)
    prev = np.full(n, NOT_FOUND, dtype=np.int64)
    idx = np.arange(n, dtype=np.int32)
    kk = keys
    vv = vals
    probes = 0
    rounds = 0
    inserted = 0
    while cur.size:
        rounds += 1
        probes += cur.size
        v = tvals.take(cur)
        empty = v == EMPTY
        if (v >= 0).any():
            hit = tkeys.take(cur) == kk
            hit &= v >= 0
            if hit.any():
                prev[idx[hit]] = v[hit]
            else:
                hit = None
        else:
            hit = None
        e_sel = np.flatnonzero(empty)
        ecur = cur[e_sel]
        ekk = kk[e_sel]
        evv = vv[e_sel]
        eidx = idx[e_sel]
        if ecur.size:
            # Three full reversed scatters over the claimants: identical
            # index order makes all three store the same (first-batch-
            # occurrence) winner's index, key, and value — losers' writes
            # are simply overwritten, so no winner compaction is needed.
            rv = slice(None, None, -1)
            claim[ecur[rv]] = eidx[rv]
            tkeys[ecur[rv]] = ekk[rv]
            tvals[ecur[rv]] = evv[rv]
            w = claim.take(ecur)
            ewin = w == eidx
            inserted += int(np.count_nonzero(ewin))
            # Claim losers chasing a duplicate of their own key resolve
            # against the winner's value; different-key losers probe on
            # (no empty slot can precede a key's storage slot, so a key
            # probing an empty slot is guaranteed absent).
            eres = ewin
            elose = ~ewin
            if elose.any():
                l_sel = np.flatnonzero(elose)
                wi = w[l_sel]
                samek = keys.take(wi) == ekk[l_sel]
                if samek.any():
                    s_sel = l_sel[samek]
                    prev[eidx[s_sel]] = vals.take(w[s_sel])
                    eres[s_sel] = True
        else:
            eres = None
        if hit is None:
            res = np.zeros(cur.size, dtype=bool)
        else:
            res = hit
        if eres is not None:
            res[e_sel] = eres
        sel = np.flatnonzero(~res)
        if sel.size == 0:
            break
        stride = stride.take(sel)
        cur = (cur.take(sel) + stride) & mask
        idx = idx.take(sel)
        kk = kk.take(sel)
        vv = vv.take(sel)
    return prev, inserted, probes, rounds


def _rebuild_numpy(tkeys, tvals, cap_bits, keys, vals, claim, probe_seed):
    """Insert distinct keys into a fresh table (the rehash kernel).

    No reinserts, no duplicates, no tombstones — so the hit test and the
    duplicate arbitration vanish: any winner among *distinct* keys is
    correct.  As in :func:`_insert_fresh_numpy`, the value table doubles
    as the claim array — rounds scatter winner batch indexes into
    ``tvals`` (one forward scatter + one gather per round), and a final
    sorted-slot fixup stores the real keys and values.  ``claim`` is
    accepted for signature symmetry but unused.
    """
    del claim
    mask = np.int32((1 << cap_bits) - 1)
    cur, stride = probe_start_stride(keys, cap_bits, probe_seed)
    idx = np.arange(keys.size, dtype=np.int32)
    first = True
    while cur.size:
        if first:
            e_sel = None
            e_cur, e_idx = cur, idx
            first = False
        else:
            e_sel = np.flatnonzero(tvals.take(cur) == EMPTY)
            e_cur = cur[e_sel]
            e_idx = idx[e_sel]
        if e_cur.size:
            tvals[e_cur] = e_idx
            win = tvals.take(e_cur) == e_idx
        else:
            win = np.empty(0, dtype=bool)
        if e_sel is None:
            res = win
        else:
            res = np.zeros(cur.size, dtype=bool)
            res[e_sel] = win
        sel = np.flatnonzero(~res)
        if sel.size == 0:
            break
        stride = stride.take(sel)
        cur = (cur.take(sel) + stride) & mask
        idx = idx.take(sel)
    slots = np.flatnonzero(tvals != EMPTY)
    widx = tvals.take(slots)
    tkeys[slots] = keys.take(widx)
    tvals[slots] = vals.take(widx)


def _delete_numpy(tkeys, tvals, cap_bits, keys, claim, probe_seed):
    """Cohort-probe batch delete (tombstones).  Returns (prev, stats)."""
    mask = np.int32((1 << cap_bits) - 1)
    n = keys.size
    cur, stride = probe_start_stride(keys, cap_bits, probe_seed)
    prev = np.full(n, NOT_FOUND, dtype=np.int64)
    idx = np.arange(n, dtype=np.int32)
    kk = keys
    probes = 0
    rounds = 0
    deleted = 0
    while cur.size:
        rounds += 1
        probes += cur.size
        v = tvals.take(cur)
        hit = tkeys.take(cur) == kk
        hit &= v >= 0
        resolved = v == EMPTY  # miss: prev stays NOT_FOUND
        h_sel = np.flatnonzero(hit)
        if h_sel.size:
            # Only same-key duplicates can contend for a found slot; the
            # reversed scatter hands the pop to the first occurrence and
            # the rest probe on to a miss — the oracle's exact behavior.
            ht = cur[h_sel]
            hidx = idx[h_sel]
            claim[ht[::-1]] = hidx[::-1]
            w = h_sel[claim.take(ht) == hidx]
            prev[idx[w]] = v[w]
            tvals[cur[w]] = TOMBSTONE
            deleted += w.size
            resolved[w] = True
        sel = np.flatnonzero(~resolved)
        if sel.size == 0:
            break
        stride = stride.take(sel)
        cur = (cur.take(sel) + stride) & mask
        idx = idx.take(sel)
        kk = kk.take(sel)
    return prev, deleted, probes, rounds


def _lookup_numpy(tkeys, tvals, cap_bits, keys, probe_seed):
    """Cohort-probe batch lookup.  Returns (out, probes, rounds)."""
    mask = np.int32((1 << cap_bits) - 1)
    n = keys.size
    cur, stride = probe_start_stride(keys, cap_bits, probe_seed)
    out = np.full(n, NOT_FOUND, dtype=np.int64)
    idx = np.arange(n, dtype=np.int32)
    kk = keys
    probes = 0
    rounds = 0
    while cur.size:
        rounds += 1
        probes += cur.size
        v = tvals.take(cur)
        hit = tkeys.take(cur) == kk
        hit &= v >= 0
        if hit.any():
            out[idx[hit]] = v[hit]
        cont = np.flatnonzero((v != EMPTY) & ~hit)
        if cont.size == 0:
            break
        stride = stride.take(cont)
        cur = (cur.take(cont) + stride) & mask
        idx = idx.take(cont)
        kk = kk.take(cont)
    return out, probes, rounds


# ---------------------------------------------------------------------------
# The flat-array map
# ---------------------------------------------------------------------------


class KeyMap:
    """Flat open-addressed int64-key -> int32-value map, batched ops only.

    Parameters
    ----------
    expected:
        Presize capacity for this many live keys (the map still grows on
        demand; 0 starts at the 64-slot minimum).
    backend:
        Kernel tier (``"numpy"``, ``"numba"``, ``"numba-parallel"``), or
        ``None`` for registry resolution.  ``"reference"`` is rejected
        here — use :func:`make_keymap`, which routes it to
        :class:`ReferenceKeyMap`.
    metrics:
        Registry receiving ``keymap.*`` counters (global by default).
    probe_seed:
        Keying constant of the probe hash (fixed default; the layout
        never leaks into results).
    """

    def __init__(
        self,
        *,
        expected: int = 0,
        backend: str | None = None,
        metrics: MetricsRegistry | None = None,
        probe_seed: int = DEFAULT_PROBE_SEED,
    ) -> None:
        resolved = resolve_keymap_backend(backend, metrics=metrics)
        if resolved == "reference":
            raise ConfigurationError(
                "KeyMap is the flat-array form; use make_keymap() for the "
                "'reference' dict oracle"
            )
        self.backend = resolved
        self.probe_seed = int(probe_seed)
        self._metrics = metrics if metrics is not None else global_registry()
        self._live = 0
        self._tombstones = 0
        self._alloc(_cap_bits_for(max(int(expected), 0)))

    def _alloc(self, cap_bits: int) -> None:
        # fill() (rather than np.full/np.zeros) touches every page at
        # allocation time, keeping first-touch page faults out of the
        # timed operation kernels.
        self.cap_bits = cap_bits
        cap = 1 << cap_bits
        self._keys = np.empty(cap, dtype=np.int64)
        self._keys.fill(0)
        self._vals = np.empty(cap, dtype=np.int32)
        self._vals.fill(EMPTY)
        self._claim = np.empty(cap, dtype=np.int32)
        self._claim.fill(0)

    # -- inspection -------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of live keys."""
        return self._live

    @property
    def tombstones(self) -> int:
        """Deleted slots awaiting the next rehash."""
        return self._tombstones

    @property
    def capacity(self) -> int:
        """Total slots (a power of two)."""
        return 1 << self.cap_bits

    @property
    def nbytes(self) -> int:
        """Flat storage footprint (keys + values + claim scratch)."""
        return self._keys.nbytes + self._vals.nbytes + self._claim.nbytes

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """Live ``(keys, values)`` int64 arrays, in slot (unspecified) order."""
        live = self._vals >= 0
        return self._keys[live], self._vals[live].astype(np.int64)

    def __len__(self) -> int:
        return self._live

    def describe(self) -> str:
        """One-line description used in reports."""
        return (
            f"KeyMap(backend={self.backend}, size={self._live}, "
            f"capacity={self.capacity}, tombstones={self._tombstones})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()

    # -- capacity ---------------------------------------------------------

    def _ensure_capacity(self, incoming: int) -> None:
        if (
            self._live + self._tombstones + incoming
            <= MAX_FILL * self.capacity
        ):
            return
        self._rehash(_cap_bits_for(self._live + incoming))

    def _rehash(self, cap_bits: int) -> None:
        keys, vals = self.items()
        vals32 = vals.astype(np.int32)
        self._alloc(cap_bits)
        if keys.size:
            if self.backend == "numpy":
                _rebuild_numpy(
                    self._keys,
                    self._vals,
                    cap_bits,
                    keys,
                    vals32,
                    self._claim,
                    self.probe_seed,
                )
            else:
                _njm.rebuild_njit(
                    self._keys,
                    self._vals,
                    np.int64(cap_bits),
                    keys,
                    vals32,
                    np.uint64(self.probe_seed),
                )
        self._tombstones = 0
        self._metrics.increment("keymap.rehashes", 1)
        self._metrics.increment("keymap.rehash_slots", int(keys.size))

    # -- operations -------------------------------------------------------

    def insert_many(self, keys, values) -> np.ndarray:
        """Set-default a batch; returns the prior value or ``-1`` per key."""
        keys = _as_keys(keys)
        vals = _as_vals(values, keys.size)
        if keys.size == 0:
            return np.empty(0, dtype=np.int64)
        self._ensure_capacity(keys.size)
        if self.backend == "numpy":
            fn = (
                _insert_fresh_numpy
                if self._live == 0 and self._tombstones == 0
                else _insert_numpy
            )
            prev, inserted, probes, rounds = fn(
                self._keys,
                self._vals,
                self.cap_bits,
                keys,
                vals,
                self._claim,
                self.probe_seed,
            )
        else:
            prev = np.empty(keys.size, dtype=np.int64)
            inserted, probes = _njm.insert_njit(
                self._keys,
                self._vals,
                np.int64(self.cap_bits),
                keys,
                vals,
                prev,
                np.uint64(self.probe_seed),
            )
            rounds = 1
        self._live += int(inserted)
        self._count(probes, rounds)
        return prev

    def delete_many(self, keys) -> np.ndarray:
        """Tombstone a batch; returns the freed value or ``-1`` per key."""
        keys = _as_keys(keys)
        if keys.size == 0:
            return np.empty(0, dtype=np.int64)
        if self.backend == "numpy":
            prev, deleted, probes, rounds = _delete_numpy(
                self._keys,
                self._vals,
                self.cap_bits,
                keys,
                self._claim,
                self.probe_seed,
            )
        else:
            prev = np.empty(keys.size, dtype=np.int64)
            deleted, probes = _njm.delete_njit(
                self._keys,
                self._vals,
                np.int64(self.cap_bits),
                keys,
                prev,
                np.uint64(self.probe_seed),
            )
            rounds = 1
        self._live -= int(deleted)
        self._tombstones += int(deleted)
        self._count(probes, rounds)
        return prev

    def lookup_many(self, keys) -> np.ndarray:
        """Stored value or ``-1`` per key; the map is not modified."""
        keys = _as_keys(keys)
        if keys.size == 0:
            return np.empty(0, dtype=np.int64)
        if self.backend == "numpy":
            out, probes, rounds = _lookup_numpy(
                self._keys, self._vals, self.cap_bits, keys, self.probe_seed
            )
        else:
            out = np.empty(keys.size, dtype=np.int64)
            if self.backend == "numba-parallel":
                probes = _njm.lookup_parallel_njit(
                    self._keys,
                    self._vals,
                    np.int64(self.cap_bits),
                    keys,
                    out,
                    np.uint64(self.probe_seed),
                )
            else:
                probes = _njm.lookup_njit(
                    self._keys,
                    self._vals,
                    np.int64(self.cap_bits),
                    keys,
                    out,
                    np.uint64(self.probe_seed),
                )
            rounds = 1
        self._count(probes, rounds)
        return out

    def _count(self, probes: int, rounds: int) -> None:
        self._metrics.increment("keymap.probes", int(probes))
        self._metrics.increment("keymap.probe_rounds", int(rounds))
        self._metrics.increment(f"keymap.calls.{self.backend}", 1)


class ReferenceKeyMap:
    """The demoted dict path: the semantics oracle for every kernel tier.

    Exactly the per-key Python loop the service layer used to run — one
    ``dict`` walked in batch order — behind the same batched API, so the
    cross-backend suites can assert exact equality of every returned
    array and of the final mapping contents.
    """

    backend = "reference"

    def __init__(self, *, metrics: MetricsRegistry | None = None) -> None:
        self._d: dict[int, int] = {}
        self._metrics = metrics if metrics is not None else global_registry()

    @property
    def size(self) -> int:
        """Number of live keys."""
        return len(self._d)

    @property
    def tombstones(self) -> int:
        """Always 0: the dict oracle has no tombstones."""
        return 0

    @property
    def capacity(self) -> int:
        """Reported as the live size (the dict has no fixed slot table)."""
        return len(self._d)

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """Live ``(keys, values)`` int64 arrays, in insertion order."""
        keys = np.fromiter(self._d.keys(), dtype=np.int64, count=len(self._d))
        vals = np.fromiter(self._d.values(), dtype=np.int64, count=len(self._d))
        return keys, vals

    def __len__(self) -> int:
        return len(self._d)

    def describe(self) -> str:
        """One-line description used in reports."""
        return f"ReferenceKeyMap(size={len(self._d)})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()

    def insert_many(self, keys, values) -> np.ndarray:
        """Set-default a batch; returns the prior value or ``-1`` per key."""
        keys = _as_keys(keys)
        vals = _as_vals(values, keys.size)
        out = np.empty(keys.size, dtype=np.int64)
        d = self._d
        get = d.get
        for i, (k, v) in enumerate(zip(keys.tolist(), vals.tolist())):
            prior = get(k)
            if prior is None:
                d[k] = v
                out[i] = NOT_FOUND
            else:
                out[i] = prior
        self._metrics.increment("keymap.calls.reference", 1)
        return out

    def delete_many(self, keys) -> np.ndarray:
        """Remove a batch; returns the freed value or ``-1`` per key."""
        keys = _as_keys(keys)
        out = np.empty(keys.size, dtype=np.int64)
        pop = self._d.pop
        for i, k in enumerate(keys.tolist()):
            out[i] = pop(k, NOT_FOUND)
        self._metrics.increment("keymap.calls.reference", 1)
        return out

    def lookup_many(self, keys) -> np.ndarray:
        """Stored value or ``-1`` per key; the map is not modified."""
        keys = _as_keys(keys)
        out = np.empty(keys.size, dtype=np.int64)
        get = self._d.get
        for i, k in enumerate(keys.tolist()):
            out[i] = get(k, NOT_FOUND)
        self._metrics.increment("keymap.calls.reference", 1)
        return out
