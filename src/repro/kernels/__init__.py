"""Pluggable placement-kernel backends for the balanced-allocation hot path.

Every table in the paper reduces to the same inner loop — gather candidate
loads, argmin with tie-breaking, scatter-increment — executed ``m × trials``
times.  This package isolates that loop behind a small backend registry:

- ``"numpy"`` — always available; the fused out-of-order commit kernel of
  :mod:`repro.kernels.numpy_backend` (flat ``np.take`` gathers, packed
  integer tie keys, preallocated scratch reused across blocks).
- ``"numba"`` — optional; a ``@njit(cache=True)`` whole-block sequential
  loop over the same packed draws (:mod:`repro.kernels.numba_backend`),
  bit-identical to numpy for the same seed.  When numba is not importable
  the registry silently falls back to numpy and logs a
  ``backend-fallback`` event to the :func:`repro.metrics.global_registry`.

Backend selection order: an explicit ``backend=`` argument (or
``ExperimentSpec.backend``) wins, then the ``REPRO_BACKEND`` environment
variable, then auto-detection (numba if importable, else numpy).  Worker
processes inherit the backend through the pickled chunk task *and* the
environment variable, so ``run_experiment`` fan-out uses one backend
everywhere.

The shared data contract (packed candidates, tie keys, dummy padding) is
documented in :mod:`repro.kernels.generate`; :func:`run_placement_kernel`
is the single public entry point over raw choice/tie arrays, and
``simulate_batch`` drives the same machinery with fused generation.

The same registry also serves the queueing path: the supermarket-model
CTMC of Tables 7–8 runs through :func:`run_supermarket_kernel`, whose
backends (blocked numpy loop in :mod:`repro.kernels.supermarket`, JIT in
:mod:`repro.kernels.numba_supermarket`) are bit-identical to the oracle
:func:`repro.kernels.reference.simulate_supermarket_reference` under the
draw-stream contract documented in :mod:`repro.kernels.supermarket`.

And the peeling path: 2-core computation on the key-cell hypergraph
(IBLT listing, the peeling-threshold experiments) runs through
:func:`run_peeling_kernel`, whose backends (vectorized worklist loop in
:mod:`repro.kernels.peeling`, JIT in :mod:`repro.kernels.numba_peeling`)
are exactly equivalent — success flag, peel order, core-edge set, and
round count — to the oracle :func:`repro.peeling.decoder.peel_reference`
under the synchronous-round contract documented in
:mod:`repro.kernels.peeling`.

And the service path: the keyed store's assignment map (key → bin) runs
on the vectorized open-addressed :class:`repro.kernels.keymap.KeyMap`
kernel — itself a double-hashed table, see :mod:`repro.hashing.probe` —
behind :func:`make_keymap` with its own four-tier backend registry
(``reference`` / ``numpy`` / ``numba`` / ``numba-parallel``); every tier
is exactly equal, batch by batch, to the dict oracle
:class:`repro.kernels.keymap.ReferenceKeyMap`.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.hashing.base import ChoiceScheme
from repro.kernels import numba_backend as _numba_mod
from repro.kernels import numba_peeling as _numba_peel
from repro.kernels import numba_supermarket as _numba_sm
from repro.kernels.generate import (
    KEY_SHIFT,
    KernelLayout,
    generate_packed,
    plan_layout,
)
from repro.kernels.hash_schemes import (
    flatten_tables,
    pairwise_affine_scalar,
    pairwise_affine_u64,
    tabulation_hash_scalar,
    tabulation_hash_u64,
)
from repro.kernels.keymap import (
    KNOWN_KEYMAP_BACKENDS,
    NOT_FOUND,
    KeyMap,
    ReferenceKeyMap,
    available_keymap_backends,
    make_keymap,
    resolve_keymap_backend,
)
from repro.kernels.numpy_backend import NumpyBackend, choose_window
from repro.kernels.peeling import (
    PeelOutcome,
    build_accumulators,
    peel_arrays_numpy,
    validate_edges,
)
from repro.kernels.parallel_trials import (
    default_shards,
    fused_parallel_supported,
    run_parallel_trials,
)
from repro.kernels.reference import (
    place_ball,
    sequential_packed_reference,
    simulate_single_trial,
    simulate_supermarket_reference,
)
from repro.kernels.supermarket import (
    check_queue_packing,
    finalize_stats,
    simulate_supermarket_numpy,
    validate_supermarket_args,
)
from repro.metrics import MetricsRegistry, global_registry
from repro.rng import default_generator
from repro.types import QueueingResult

__all__ = [
    "DEFAULT_BLOCK",
    "KEY_SHIFT",
    "KNOWN_KEYMAP_BACKENDS",
    "KernelLayout",
    "KeyMap",
    "NOT_FOUND",
    "PeelOutcome",
    "ReferenceKeyMap",
    "available_backends",
    "available_keymap_backends",
    "check_queue_packing",
    "choose_window",
    "default_shards",
    "flatten_tables",
    "fused_parallel_supported",
    "generate_packed",
    "kernel_metrics",
    "make_keymap",
    "pairwise_affine_scalar",
    "pairwise_affine_u64",
    "place_ball",
    "plan_layout",
    "resolve_backend",
    "resolve_keymap_backend",
    "run_parallel_trials",
    "run_peeling_kernel",
    "run_placement_kernel",
    "run_supermarket_kernel",
    "sequential_packed_reference",
    "simulate_single_trial",
    "simulate_supermarket_reference",
    "tabulation_hash_scalar",
    "tabulation_hash_u64",
]

#: Ball-steps generated (and fed to the kernel) per superblock.  Sweep at
#: n = 2^12..2^14, d = 3 showed throughput flat past ~2048 steps while
#: scratch grows linearly, so 4096 sits at the knee; see
#: ``docs/performance.md``.
DEFAULT_BLOCK = 4096

ENV_VAR = "REPRO_BACKEND"
KNOWN_BACKENDS = ("numpy", "numba")

_NUMPY = NumpyBackend()
_NUMBA = _numba_mod.NumbaBackend() if _numba_mod.NUMBA_AVAILABLE else None


def available_backends() -> tuple[str, ...]:
    """Names of the backends importable in this process."""
    return KNOWN_BACKENDS if _NUMBA is not None else ("numpy",)


def kernel_metrics() -> MetricsRegistry:
    """The registry kernel-level timers and fallback events default to."""
    return global_registry()


def _log_fallback(
    requested: str, source: str, metrics: MetricsRegistry | None
) -> None:
    fields = dict(
        requested=requested,
        using="numpy",
        source=source,
        error=repr(_numba_mod.NUMBA_IMPORT_ERROR),
    )
    global_registry().event("backend-fallback", **fields)
    if metrics is not None and metrics is not global_registry():
        metrics.event("backend-fallback", **fields)


def resolve_backend(name: str | None = None, *, metrics: MetricsRegistry | None = None):
    """Resolve a backend: explicit ``name`` > ``REPRO_BACKEND`` env > auto.

    Unknown names raise :class:`~repro.errors.ConfigurationError`.
    Requesting ``"numba"`` where numba is not importable returns the numpy
    backend and logs a ``backend-fallback`` event (to ``metrics`` when
    given, and always to the global registry) — runs keep working, the
    degradation is observable.
    """
    source = "explicit"
    if name is None:
        name = os.environ.get(ENV_VAR) or None
        source = "env"
    if name is None:
        return _NUMBA if _NUMBA is not None else _NUMPY
    name = name.strip().lower()
    if name not in KNOWN_BACKENDS:
        raise ConfigurationError(
            f"unknown kernel backend {name!r}; known: {', '.join(KNOWN_BACKENDS)}"
        )
    if name == "numba":
        if _NUMBA is None:
            _log_fallback("numba", source, metrics)
            return _NUMPY
        return _NUMBA
    return _NUMPY


def run_placement_kernel(
    loads: np.ndarray,
    choices: np.ndarray,
    tie_keys: np.ndarray | None = None,
    *,
    tie_break: str = "random",
    backend: str | None = None,
    metrics: MetricsRegistry | None = None,
) -> np.ndarray:
    """Place ``choices`` sequentially into ``loads`` using a kernel backend.

    The raw-array face of the kernel subsystem (``simulate_batch`` wraps
    it together with fused choice generation).

    Parameters
    ----------
    loads:
        ``(trials, n_bins)`` integer load table, updated in place.
    choices:
        ``(trials, steps, d)`` candidate bins; ball ``b`` of trial ``t``
        goes to the least loaded of ``choices[t, b]``.
    tie_keys:
        Optional ``(trials, steps, d)`` non-negative tie-break keys (lower
        wins among load ties; equal keys fall back to the lower bin).
        Required to fit the planned layout's tie-key width.  Must be
        ``None`` for ``tie_break="left"``, where the column index is the
        tie key by definition.
    tie_break, backend, metrics:
        As in ``simulate_batch``.

    Returns
    -------
    numpy.ndarray
        ``loads``, for chaining.
    """
    if loads.ndim != 2:
        raise ConfigurationError(f"loads must be 2-D, got shape {loads.shape}")
    if choices.ndim != 3 or choices.shape[0] != loads.shape[0]:
        raise ConfigurationError(
            "choices must be (trials, steps, d) matching loads' trial count; "
            f"got {choices.shape} vs {loads.shape}"
        )
    trials, n_bins = loads.shape
    _, steps, d = choices.shape
    if tie_break not in ("random", "left"):
        raise ConfigurationError(
            f"tie_break must be 'random' or 'left', got {tie_break!r}"
        )
    if tie_break == "left" and tie_keys is not None:
        raise ConfigurationError(
            "tie_keys must be None with tie_break='left' (column order rules)"
        )
    layout = plan_layout(n_bins, d, tie_break, trials, steps)
    if layout is None:
        raise ConfigurationError(
            f"n_bins={n_bins} exceeds the packed-kernel address space "
            "(even the wide int64 layout); use simulate_batch, which "
            "falls back to the strided engine"
        )
    if tie_keys is not None:
        if tie_keys.shape != choices.shape:
            raise ConfigurationError(
                f"tie_keys shape {tie_keys.shape} != choices shape {choices.shape}"
            )
        if tie_keys.size and (
            int(tie_keys.min()) < 0 or int(tie_keys.max()) >> layout.tie_bits
        ):
            raise ConfigurationError(
                f"tie_keys must lie in [0, 2**{layout.tie_bits}) for this layout"
            )
    # The int32 work table bounds loads at 31 value bits; wide layouts may
    # leave even fewer bits to the packed load field.
    load_budget = (1 << min(layout.load_bits, 31)) - 1
    if int(loads.min(initial=0)) < 0 or int(loads.max(initial=0)) + steps > (
        load_budget
    ):
        raise ConfigurationError(
            "loads must be non-negative and fit the packed load field "
            f"(max {load_budget}) after placing all balls"
        )
    impl = resolve_backend(backend, metrics=metrics)
    registry = metrics if metrics is not None else kernel_metrics()
    window = choose_window(n_bins, d)
    bins_p = layout.bins_p
    dt = layout.dtype
    cols = np.arange(d, dtype=dt) << dt.type(layout.cidx_bits)
    with registry.timer("kernel.place_seconds"):
        for t0 in range(0, trials, layout.trial_chunk):
            t1 = min(trials, t0 + layout.trial_chunk)
            ct = t1 - t0
            work = np.zeros(ct * bins_p, dtype=np.int32)
            work.reshape(ct, bins_p)[:, :n_bins] = loads[t0:t1]
            toff = np.arange(ct, dtype=dt) * dt.type(bins_p)
            pc = np.empty((d, ct, steps + 1), dtype=dt)
            pc[:, :, steps] = toff + dt.type(n_bins)
            body = pc[:, :, :steps]
            np.copyto(
                body,
                choices[t0:t1].transpose(2, 0, 1),
                casting="unsafe",
            )
            if tie_break == "left":
                if layout.tie_bits:
                    body += cols[:, None, None]
            elif tie_keys is not None and layout.tie_bits:
                keys = tie_keys[t0:t1].transpose(2, 0, 1).astype(dt)
                body += keys << dt.type(layout.cidx_bits)
            body += toff[:, None]
            ws = impl.make_workspace(
                d=d, trials=ct, window=window, bins_p=bins_p, dtype=dt
            )
            impl.place(work, pc, layout=layout, workspace=ws)
            loads[t0:t1] = work.reshape(ct, bins_p)[:, :n_bins]
    registry.increment("kernel.balls_placed", trials * steps)
    registry.increment(f"kernel.calls.{impl.name}", 1)
    return loads


def run_peeling_kernel(
    edges: np.ndarray,
    n_vertices: int,
    *,
    backend: str | None = None,
    metrics: MetricsRegistry | None = None,
) -> PeelOutcome:
    """Peel an ``(m, d)`` edge array to its 2-core through a kernel backend.

    The peeling face of the kernel subsystem:
    :func:`repro.peeling.decoder.peel` and the batched IBLT lister drive
    this function.  Backend selection follows the standard order
    (explicit ``backend`` > ``REPRO_BACKEND`` env > auto), and every
    backend is exactly equivalent — success flag, peel order, core-edge
    set, round count — to :func:`repro.peeling.decoder.peel_reference`
    under the synchronous-round contract documented in
    :mod:`repro.kernels.peeling`.

    Parameters
    ----------
    edges:
        ``(m, d)`` integer array of vertex ids in ``[0, n_vertices)``;
        vertices may repeat within an edge (multiplicity-aware
        semantics, see the contract).
    n_vertices:
        Vertex-space size (IBLT cell count / hypergraph vertex count).
    backend:
        Kernel-backend name (``"numpy"`` / ``"numba"``), or None for
        env/auto resolution.
    metrics:
        Registry receiving the kernel timer/counters (global by default).

    Returns
    -------
    PeelOutcome
        ``(success, peeled_order, core_edges, rounds)``.
    """
    edges = validate_edges(edges, n_vertices)
    impl = resolve_backend(backend, metrics=metrics)
    registry = metrics if metrics is not None else kernel_metrics()
    with registry.timer("kernel.peel_seconds"):
        if impl.name == "numba" and edges.shape[0]:
            degree, edge_xor = build_accumulators(edges, n_vertices)
            n_peeled, order, alive, rounds, status = (
                _numba_peel.peel_arrays_numba(edges, degree, edge_xor)
            )
            if status != _numba_peel.PEEL_OK:
                raise SimulationError(
                    "peeling invariant violated: a degree-1 vertex claimed "
                    "a dead or out-of-range edge (numba backend, status "
                    f"{status})"
                )
            core = np.flatnonzero(~alive)
            outcome = PeelOutcome(
                core.size == 0, order[:n_peeled].copy(), core, rounds
            )
        else:
            outcome = peel_arrays_numpy(edges, n_vertices)
    registry.increment("kernel.edges_peeled", int(outcome.peeled_order.size))
    registry.increment(f"kernel.calls.{impl.name}", 1)
    return outcome


def run_supermarket_kernel(
    scheme: ChoiceScheme,
    lam: float,
    sim_time: float,
    *,
    burn_in: float = 0.0,
    seed: int | np.random.Generator | None = None,
    max_total_jobs: int | None = None,
    track_tails: bool = False,
    tie_break: str = "random",
    backend: str | None = None,
    metrics: MetricsRegistry | None = None,
) -> QueueingResult:
    """Run one supermarket-model CTMC simulation through a kernel backend.

    The queueing face of the kernel subsystem (Tables 7-8):
    :func:`repro.queueing.simulate_supermarket` is a thin wrapper over this
    function.  Backend selection follows the standard order (explicit
    ``backend`` > ``REPRO_BACKEND`` env > auto), and every backend is
    bit-identical to
    :func:`repro.kernels.reference.simulate_supermarket_reference` for the
    same seed under the draw-stream contract documented in
    :mod:`repro.kernels.supermarket`.

    Parameters
    ----------
    scheme:
        Choice generator; ``scheme.n_bins`` queues, ``scheme.d`` choices
        per arrival.
    lam:
        Arrival rate per queue, in (0, 1) for stability.
    sim_time:
        Total simulated time (the paper ran 10000 time units).
    burn_in:
        Jobs arriving before this time are excluded from the sojourn mean
        and all time averages (the paper used 1000).
    seed:
        Seed or generator.  A passed-in generator is left in the same
        state regardless of backend.
    max_total_jobs:
        Safety valve: abort with :class:`~repro.errors.StabilityError`
        when the population exceeds this (defaults to ``50 * n``).
    track_tails:
        When True, also accumulate the time-averaged fraction of queues
        with at least ``i`` jobs (``result.tail_fractions``).
    tie_break:
        ``"random"`` (the standard model) or ``"left"`` (join the first
        shortest candidate in choice order).
    backend:
        Kernel-backend name (``"numpy"`` / ``"numba"``), or None for
        env/auto resolution.
    metrics:
        Registry receiving the kernel timer/counters (global by default).

    Returns
    -------
    QueueingResult
        Sojourn mean, event counts, busy fraction, and optional tails.
    """
    validate_supermarket_args(lam, sim_time, burn_in, tie_break)
    impl = resolve_backend(backend, metrics=metrics)
    registry = metrics if metrics is not None else kernel_metrics()
    rng = default_generator(seed)
    n = scheme.n_bins
    if max_total_jobs is None:
        max_total_jobs = 50 * n
    check_queue_packing(max_total_jobs)
    left_ties = tie_break == "left"
    if impl.name == "numba":
        simulate = _numba_sm.simulate_supermarket_numba
    else:
        simulate = simulate_supermarket_numpy
    with registry.timer("kernel.supermarket_seconds"):
        stats = simulate(
            scheme,
            lam,
            sim_time,
            burn_in,
            rng,
            max_total_jobs,
            track_tails,
            left_ties,
        )
    registry.increment(
        "kernel.supermarket_events", stats.n_arrivals + stats.n_departures
    )
    registry.increment("kernel.supermarket_completions", stats.s_count)
    registry.increment(f"kernel.calls.{impl.name}", 1)
    return finalize_stats(stats, n=n, sim_time=sim_time, burn_in=burn_in)
