"""Supermarket-model CTMC kernel: shared draw-stream contract + numpy backend.

CTMC formulation
----------------
With exp(1) service at every queue the system state is a continuous-time
Markov chain: an **arrival** at rate ``λn`` draws ``d`` queues from the
choice scheme and joins the shortest (ties by random key or leftmost); a
**departure** at rate ``b`` (the busy-queue count) completes the head job
of a uniformly random busy queue.  No event heap is needed — the simulator
repeatedly draws an ``Exp(λn + b)`` inter-event time and an event-type
coin.

Draw-stream contract (bit-identity across backends)
---------------------------------------------------
Every backend — the oracle loop in :mod:`repro.kernels.reference`, the
blocked numpy loop here, and the numba JIT in
:mod:`repro.kernels.numba_supermarket` — consumes the generator through
the unified block contract of :mod:`repro.kernels.blockrng`: lazily
refilled *event blocks* (:func:`~repro.kernels.blockrng.refill_event_block`)
and *choice blocks* (:func:`~repro.kernels.blockrng.refill_choice_block`),
cursors initially exhausted.  Results are therefore **bit-identical** for
the same seed and the generator is left in the same state afterwards
(callers reuse one generator across sequential runs).  Tie keys are drawn
even under ``tie_break="left"`` (and ignored), so the stream does not
depend on the tie rule.

Per event, with ``rate = λn + b``: the inter-event time is
``expo[i] / rate`` (a division — backends must not substitute a
reciprocal multiply) and the **fused event coin** is ``x = evu[i] * rate``:
an arrival iff ``x < λn``, otherwise a departure from busy slot
``j = int(x - λn)`` (clamped to ``b - 1``; conditionally on ``x ≥ λn``,
``x - λn`` is uniform on ``[0, b)``).  This replaces both the event-type
coin and a separate busy-queue index draw.

State-evolution contract
------------------------
The busy set is a dense array with append-on-busy and swap-remove-on-empty
(slot ``j`` is filled by the last element); since departures sample busy
*slots*, every backend must replicate this exact evolution.  An event
whose time lands at or beyond ``sim_time`` terminates the run **without
committing** (the clock, counters and integrals keep their pre-event
values); the population/busy/tail integrals are then flushed over
``[max(now, burn_in), sim_time]``.  All float accumulations are plain
sequential scalar adds in event order — the canonical order vectorized
variants must reproduce exactly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, StabilityError
from repro.hashing.base import ChoiceScheme
from repro.kernels.blockrng import (
    CHOICE_BLOCK as _CHOICE_BLOCK,
)
from repro.kernels.blockrng import (
    EVENT_BLOCK as _EVENT_BLOCK,
)
from repro.kernels.blockrng import (
    TIE_BITS as _TIE_BITS,
)
from repro.kernels.blockrng import (
    refill_choice_block,
    refill_event_block,
)
from repro.kernels.packing import (
    INT64_VALUE_BITS,
    check_packed_fields,
    field_width,
)
from repro.types import QueueingResult

__all__ = [
    "SupermarketStats",
    "check_queue_packing",
    "finalize_stats",
    "simulate_supermarket_numpy",
    "stability_message",
    "validate_supermarket_args",
]

# The draw-block sizes and tie width now live in repro.kernels.blockrng;
# the historical public names here remain importable for one release via
# the deprecation shim in __getattr__ below.
_DEPRECATED_CONSTANTS = {
    "EVENT_BLOCK": _EVENT_BLOCK,
    "CHOICE_BLOCK": _CHOICE_BLOCK,
    "TIE_BITS": _TIE_BITS,
}


def __getattr__(name: str):
    if name in _DEPRECATED_CONSTANTS:
        warnings.warn(
            f"repro.kernels.supermarket.{name} is deprecated; import it "
            "from repro.kernels.blockrng (removal one release after 1.2)",
            DeprecationWarning,
            stacklevel=2,
        )
        return _DEPRECATED_CONSTANTS[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def check_queue_packing(max_total_jobs: int) -> None:
    """Guard the ``queue_len << TIE_BITS | tie`` packing against overflow.

    A queue can grow to ``max_total_jobs`` before the stability valve
    trips, so its length field needs ``field_width(max_total_jobs + 1)``
    bits; together with the tie key the packed comparison key must fit
    int64's 63 value bits, else the argmin would be silently corrupted.
    Raises :class:`~repro.errors.ConfigurationError` at the boundary
    (``max_total_jobs >= 2**43`` with the default 20 tie bits).
    """
    check_packed_fields(
        {
            "queue_len": field_width(max_total_jobs + 1),
            "tie": _TIE_BITS,
        },
        carrier_bits=INT64_VALUE_BITS,
        context=f"supermarket queue key (max_total_jobs={max_total_jobs})",
    )


@dataclass(frozen=True)
class SupermarketStats:
    """Raw accumulators of one supermarket run, identical across backends.

    Attributes
    ----------
    s_count, s_sum:
        Count of and summed sojourn times over departures whose job
        *arrived* at or after burn-in (``mean = s_sum / s_count``).
    area:
        Time integral of the total job population over
        ``[burn_in, sim_time]``.
    busy_area:
        Time integral of the busy-queue count over the same window.
    n_arrivals, n_departures:
        Event counts over the whole run (burn-in included).
    tail_area:
        ``tail_area[i]`` = time integral of the number of queues with
        length exactly ``i`` over the window; ``None`` unless tails were
        tracked.
    """

    s_count: int
    s_sum: float
    area: float
    busy_area: float
    n_arrivals: int
    n_departures: int
    tail_area: np.ndarray | None = None


def validate_supermarket_args(
    lam: float, sim_time: float, burn_in: float, tie_break: str
) -> None:
    """Raise :class:`~repro.errors.ConfigurationError` on bad parameters.

    Shared by the kernel driver and the reference oracle so both reject
    inputs with identical messages.
    """
    if not 0.0 < lam < 1.0:
        raise ConfigurationError(f"lambda must be in (0, 1), got {lam}")
    if sim_time <= 0:
        raise ConfigurationError(f"sim_time must be positive, got {sim_time}")
    if not 0.0 <= burn_in < sim_time:
        raise ConfigurationError(
            f"burn_in must lie in [0, sim_time); got {burn_in} vs {sim_time}"
        )
    if tie_break not in ("random", "left"):
        raise ConfigurationError(
            f"tie_break must be 'random' or 'left', got {tie_break!r}"
        )


def stability_message(max_total_jobs: int, now: float) -> str:
    """The :class:`~repro.errors.StabilityError` text shared by backends."""
    return (
        f"population exceeded {max_total_jobs} jobs at t={now:.1f}; "
        "system appears unstable"
    )


def finalize_stats(
    stats: SupermarketStats, *, n: int, sim_time: float, burn_in: float
) -> QueueingResult:
    """Convert raw accumulators into a :class:`~repro.types.QueueingResult`.

    Shared by every backend so the derived quantities (means, fractions,
    tail post-processing) are computed by one code path and cannot drift.
    """
    window = sim_time - burn_in
    tails = None
    if stats.tail_area is not None:
        fractions = stats.tail_area / (window * n)
        # Convert exact-length time fractions to >= i tail fractions.
        tails = np.cumsum(fractions[::-1])[::-1]
        tails = np.concatenate(([1.0], tails[1:]))
        nonzero = np.flatnonzero(tails > 1e-12)
        tails = tails[: (nonzero[-1] + 2 if nonzero.size else 1)]
    return QueueingResult(
        mean_sojourn_time=(
            stats.s_sum / stats.s_count if stats.s_count else float("nan")
        ),
        completed_jobs=stats.s_count,
        mean_queue_length=stats.area / window / n,
        sim_time=sim_time,
        tail_fractions=tails,
        n_arrivals=stats.n_arrivals,
        n_departures=stats.n_departures,
        busy_fraction=stats.busy_area / (window * n),
    )


def simulate_supermarket_numpy(
    scheme: ChoiceScheme,
    lam: float,
    sim_time: float,
    burn_in: float,
    rng: np.random.Generator,
    max_total_jobs: int,
    track_tails: bool,
    left_ties: bool,
) -> SupermarketStats:
    """Blocked-draw event loop: the numpy backend of the supermarket kernel.

    Arguments are pre-validated by :func:`repro.kernels.run_supermarket_kernel`.
    Randomness is consumed per the module contract; between refills the loop
    runs on plain Python scalars and lists (``.tolist()``-ed blocks, packed
    ``length << TIE_BITS`` queue keys, dense busy list, per-queue FIFO lists
    with a lazy head cursor), which on a 1-core host beats numpy temporaries
    for this irreducibly sequential chain — see ``docs/performance.md``.
    """
    n = scheme.n_bins
    d = scheme.d
    ar = lam * n
    one = 1 << _TIE_BITS  # packed-length increment

    qkey = [0] * n  # queue length << TIE_BITS
    fifos: list[list[float]] = [[] for _ in range(n)]
    heads = [0] * n
    busy: list[int] = []  # dense busy-queue slots; departures index this

    now = 0.0
    jobs = 0
    b = 0
    s_count = 0
    s_sum = 0.0
    area = 0.0
    busy_area = 0.0
    n_arr = 0
    n_dep = 0

    if track_tails:
        counts = [0] * 64
        counts[0] = n
        tail_area = [0.0] * 64
        last_t = [0.0] * 64

    expo: list[float] = []
    evu: list[float] = []
    ev_i = _EVENT_BLOCK
    cb: list[list[int]] = []
    tb: list[list[int]] = []
    ch_i = _CHOICE_BLOCK

    while True:
        if ev_i == _EVENT_BLOCK:
            expo_a, evu_a = refill_event_block(rng)
            expo = expo_a.tolist()
            evu = evu_a.tolist()
            ev_i = 0
        rate = ar + b
        t_new = now + expo[ev_i] / rate
        if t_new >= sim_time:
            break
        x = evu[ev_i] * rate
        ev_i += 1
        # Integrate population/busy count over [max(now, burn_in), t_new]
        # at their pre-event values.
        start = now if now > burn_in else burn_in
        if t_new > start:
            dt = t_new - start
            area += jobs * dt
            busy_area += b * dt
        now = t_new
        if x < ar:  # arrival
            if ch_i == _CHOICE_BLOCK:
                cb_a, tb_a = refill_choice_block(scheme, rng)
                cb = cb_a.tolist()
                tb = tb_a.tolist()
                ch_i = 0
            row = cb[ch_i]
            if left_ties:
                tgt = row[0]
                bk = qkey[tgt]
                for j in range(1, d):
                    q = row[j]
                    k = qkey[q]
                    if k < bk:
                        bk = k
                        tgt = q
            else:
                tie = tb[ch_i]
                tgt = row[0]
                bk = qkey[tgt] | tie[0]
                for j in range(1, d):
                    q = row[j]
                    k = qkey[q] | tie[j]
                    if k < bk:
                        bk = k
                        tgt = q
            ch_i += 1
            fifos[tgt].append(now)
            k = qkey[tgt]
            if k < one:  # was empty -> becomes busy
                busy.append(tgt)
                b += 1
            qkey[tgt] = k + one
            jobs += 1
            n_arr += 1
            if track_tails:
                new_len = (k >> _TIE_BITS) + 1
                if new_len + 1 >= len(counts):
                    grow = len(counts)
                    counts.extend([0] * grow)
                    tail_area.extend([0.0] * grow)
                    last_t.extend([0.0] * grow)
                for lev in (new_len - 1, new_len):
                    s = last_t[lev]
                    if s < burn_in:
                        s = burn_in
                    if now > s:
                        tail_area[lev] += counts[lev] * (now - s)
                    last_t[lev] = now
                counts[new_len - 1] -= 1
                counts[new_len] += 1
            if jobs > max_total_jobs:
                raise StabilityError(stability_message(max_total_jobs, now))
        else:  # departure from busy slot j
            j = int(x - ar)
            if j >= b:
                j = b - 1
            q = busy[j]
            f = fifos[q]
            h = heads[q]
            t_arr = f[h]
            h += 1
            if h > 32:
                del f[:h]
                h = 0
            heads[q] = h
            if t_arr >= burn_in:
                s_count += 1
                s_sum += now - t_arr
            k = qkey[q] - one
            qkey[q] = k
            if k < one:  # emptied -> swap-remove from busy set
                b -= 1
                last = busy[b]
                busy[j] = last
                busy.pop()
            jobs -= 1
            n_dep += 1
            if track_tails:
                old_len = (k >> _TIE_BITS) + 1
                for lev in (old_len - 1, old_len):
                    s = last_t[lev]
                    if s < burn_in:
                        s = burn_in
                    if now > s:
                        tail_area[lev] += counts[lev] * (now - s)
                    last_t[lev] = now
                counts[old_len] -= 1
                counts[old_len - 1] += 1

    # Final flush at sim_time (the terminating event was never committed).
    start = now if now > burn_in else burn_in
    if sim_time > start:
        dt = sim_time - start
        area += jobs * dt
        busy_area += b * dt
    tails_out = None
    if track_tails:
        for lev in range(len(counts)):
            s = last_t[lev]
            if s < burn_in:
                s = burn_in
            if sim_time > s:
                tail_area[lev] += counts[lev] * (sim_time - s)
            last_t[lev] = sim_time
        tails_out = np.asarray(tail_area, dtype=np.float64)
    return SupermarketStats(
        s_count=s_count,
        s_sum=s_sum,
        area=area,
        busy_area=busy_area,
        n_arrivals=n_arr,
        n_departures=n_dep,
        tail_area=tails_out,
    )
