"""Unified block-RNG substrate: the draw-stream contract of every kernel.

All kernel backends in this package consume randomness through the same
two mechanisms, defined here once:

1. **Lazily refilled draw blocks** over one ``numpy.random.Generator``.
   Cursors start exhausted; a block is refilled only when an event (or
   arrival) actually needs it, by exactly one canonical refill call:

   - *event blocks* (:func:`refill_event_block`):
     ``rng.exponential(1.0, EVENT_BLOCK)`` then ``rng.random(EVENT_BLOCK)``;
   - *choice blocks* (:func:`refill_choice_block`):
     ``scheme.batch(CHOICE_BLOCK, rng)`` then
     ``rng.integers(0, 2**TIE_BITS, (CHOICE_BLOCK, d), dtype=int64)``.
     Tie keys are drawn even when the tie rule ignores them, so the
     stream does not depend on the tie rule.

   Because refills are lazy and ordered, every backend that honors the
   contract consumes the generator identically and leaves it in the same
   final state — the bit-identity guarantee the cross-backend suites pin
   (``tests/kernels``).  :class:`BlockedDraws` is the plain cursor the
   reference oracle uses; the optimized loops inline the same cursor.

2. **Counter-based per-trial streams** for the parallel-trials path
   (:mod:`repro.kernels.parallel_trials`).  Trial ``i`` of a run rooted
   at ``seed`` owns the stream ``splitmix64(trial_seed(seed, i))``, where
   :func:`trial_seed` derives a 64-bit key from
   ``SeedSequence(entropy=seed, spawn_key=(i,))`` — the same child the
   process-pool engine would spawn.  Draw ``k`` of the stream is the pure
   function ``mix64(key + (k+1) * GAMMA)`` (:func:`splitmix64_block`),
   identical whether computed vectorized here, scalar inside a numba
   kernel, or by :class:`repro.rng.splitmix.SplitMix64` — so per-trial
   results are independent of scheduling, chunking, and host (the
   *seed-equivalence* guarantee).

The block sizes and the tie width are owned here; the historical homes in
:mod:`repro.kernels.supermarket` re-export them through a deprecation
shim for one release.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

import numpy as np

from repro.rng.splitmix import _GAMMA, _MIX1, _MIX2

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hashing.base import ChoiceScheme

__all__ = [
    "CHOICE_BLOCK",
    "EVENT_BLOCK",
    "TIE_BITS",
    "BlockedDraws",
    "refill_choice_block",
    "refill_event_block",
    "splitmix64_block",
    "take_field",
    "trial_seed",
]

#: Events per prefetched exponential/uniform block.
EVENT_BLOCK = 4096
#: Arrivals per prefetched choice/tie-key block.
CHOICE_BLOCK = 4096
#: Queue-kernel tie-key width: collisions (equal length and key) fall back
#: to the first candidate with probability 2**-20 per tie — unobservable
#: at paper scale.  The packed ``queue_len << TIE_BITS | tie`` key is
#: width-checked by :mod:`repro.kernels.packing` (see
#: :func:`repro.kernels.supermarket.check_queue_packing`).
TIE_BITS = 20

_U64 = np.uint64


def refill_event_block(
    rng: np.random.Generator, block: int = EVENT_BLOCK
) -> tuple[np.ndarray, np.ndarray]:
    """One canonical event refill: ``(exponentials, uniforms)``.

    Draw order (exponentials first) is part of the contract — backends
    must obtain event blocks through this function (or reproduce these
    two calls verbatim) to stay bit-identical.
    """
    return rng.exponential(1.0, block), rng.random(block)


def refill_choice_block(
    scheme: "ChoiceScheme",
    rng: np.random.Generator,
    block: int = CHOICE_BLOCK,
    tie_bits: int = TIE_BITS,
) -> tuple[np.ndarray, np.ndarray]:
    """One canonical choice refill: ``(choices, tie_keys)``.

    ``choices`` is the scheme's ``(block, d)`` candidate matrix and
    ``tie_keys`` a matching int64 matrix of ``tie_bits``-wide keys, drawn
    unconditionally (see the module contract).
    """
    choices = scheme.batch(block, rng)
    ties = rng.integers(0, 1 << tie_bits, size=(block, scheme.d), dtype=np.int64)
    return choices, ties


class BlockedDraws:
    """Lazily refilled cursor over a tuple of parallel draw arrays.

    The plainest consumer of the block contract: ``take()`` returns the
    current row (one scalar per array), refilling via the supplied
    callable only when the block is exhausted.  The cursor starts
    exhausted, so no randomness is consumed before the first ``take`` —
    a run that terminates immediately leaves the generator untouched.

    The optimized kernels do not call through this class (a per-event
    method call costs more than the draw); they inline the identical
    cursor logic.  The reference oracle uses it directly, making the
    contract executable.
    """

    __slots__ = ("_arrays", "_block", "_i", "_refill")

    def __init__(
        self, block: int, refill: Callable[[], tuple[np.ndarray, ...]]
    ) -> None:
        self._block = block
        self._refill = refill
        self._arrays: tuple[np.ndarray, ...] = ()
        self._i = block  # exhausted: first take() triggers a refill

    def take(self) -> tuple:
        """The next row of draws, refilling lazily."""
        if self._i == self._block:
            self._arrays = self._refill()
            self._i = 0
        i = self._i
        self._i = i + 1
        return tuple(a[i] for a in self._arrays)


def trial_seed(root: int | None, index: int) -> int:
    """The 64-bit counter-stream key of trial ``index`` under ``root``.

    Derived from ``SeedSequence(entropy=root, spawn_key=(index,))`` — the
    same child ``spawn_seeds`` would hand a worker — so the parallel-trials
    path and the process-pool path draw per-trial keys from one family.
    """
    ss = np.random.SeedSequence(entropy=root, spawn_key=(index,))
    return int(ss.generate_state(1, np.uint64)[0])


def splitmix64_block(seed: int, start: int, count: int) -> np.ndarray:
    """Draws ``start .. start+count-1`` of the splitmix64 stream of ``seed``.

    Vectorized, stateless evaluation of the counter stream: element ``k``
    equals the ``(start + k + 1)``-th output of
    :class:`repro.rng.splitmix.SplitMix64` seeded with ``seed`` (pinned by
    ``tests/kernels/test_blockrng.py``).  Returns a uint64 array.
    """
    ctr = np.arange(start + 1, start + 1 + count, dtype=np.uint64)
    z = _U64(seed & 0xFFFFFFFFFFFFFFFF) + ctr * _U64(_GAMMA)
    z = (z ^ (z >> _U64(30))) * _U64(_MIX1)
    z = (z ^ (z >> _U64(27))) * _U64(_MIX2)
    return z ^ (z >> _U64(31))


def take_field(raw: np.ndarray, shift: int, bits: int) -> np.ndarray:
    """Slice a ``bits``-wide field at ``shift`` out of uint64 draws."""
    return (raw >> _U64(shift)) & _U64((1 << bits) - 1)
