"""Optional Numba JIT peeling backend.

Compiles the synchronous-round peeling process of
:mod:`repro.kernels.peeling` with ``@njit(cache=True)``: the same flat
``(degree, edge_xor)`` accumulators, the same per-round frontier →
claim → dedupe-ascending → scatter steps, so the backend is **exactly
equivalent** to the numpy kernel and the reference oracle on success,
``peeled_order``, ``core_edges``, and ``rounds`` (asserted in
``tests/kernels/test_peeling_backends.py`` whenever numba is installed).

Differences are purely mechanical: the claim dedupe is a sort plus
adjacent-duplicate scan instead of ``np.unique``, and contract
violations are signalled with a status code (numba cannot raise the
repository's exception types) that the driver in :mod:`repro.kernels`
converts to :class:`~repro.errors.SimulationError`.

Numba is an optional dependency: importing this module never raises.
When the import fails, :data:`NUMBA_AVAILABLE` is ``False`` and backend
resolution in :mod:`repro.kernels` falls back to numpy, logging a
``backend-fallback`` metrics event.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "NUMBA_AVAILABLE",
    "NUMBA_IMPORT_ERROR",
    "PEEL_OK",
    "PEEL_BAD_CLAIM",
    "peel_arrays_numba",
]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    NUMBA_AVAILABLE = True
    NUMBA_IMPORT_ERROR: Exception | None = None
except Exception as _exc:  # ImportError, or a broken install
    njit = None
    NUMBA_AVAILABLE = False
    NUMBA_IMPORT_ERROR = _exc

#: Status codes returned by the compiled loop (numba cannot raise our
#: exception types); the driver maps non-zero codes to SimulationError.
PEEL_OK = 0
PEEL_BAD_CLAIM = 1


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed

    @njit(cache=True)
    def _peel_core(edges, degree, edge_xor, alive, peeled_order):
        m, d = edges.shape
        n = degree.shape[0]
        # Frontier/claim buffers sized for the worst case: the initial
        # frontier holds at most n vertices, later frontiers at most
        # m*d touched incidences (duplicates included — they collapse
        # in the per-round dedupe, but they occupy slots first).
        cap = n if n > m * d else m * d
        frontier = np.empty(cap, dtype=np.int64)
        fsize = 0
        for v in range(n):
            if degree[v] == 1:
                frontier[fsize] = v
                fsize += 1
        nxt = np.empty(m * d, dtype=np.int64)
        claims = np.empty(cap, dtype=np.int64)
        n_peeled = 0
        rounds = 0
        while fsize > 0:
            # Claim + dedupe (sort, then skip adjacent duplicates) — the
            # ascending scan reproduces np.unique's ordering exactly.
            for i in range(fsize):
                claims[i] = edge_xor[frontier[i]] - 1
            sub = claims[:fsize]
            sub.sort()
            batch_start = n_peeled
            prev = np.int64(-1)
            for i in range(fsize):
                e = sub[i]
                if e == prev:
                    continue
                prev = e
                if e < 0 or e >= m or not alive[e]:
                    return n_peeled, rounds, PEEL_BAD_CLAIM
                alive[e] = False
                peeled_order[n_peeled] = e
                n_peeled += 1
            rounds += 1
            # Scatter removals; collect touched vertices for the next
            # frontier (duplicates collapse in the next round's dedupe).
            nsize = 0
            for i in range(batch_start, n_peeled):
                e = peeled_order[i]
                eid = e + 1
                for j in range(d):
                    v = edges[e, j]
                    degree[v] -= 1
                    edge_xor[v] ^= eid
                    nxt[nsize] = v
                    nsize += 1
            fsize = 0
            for i in range(nsize):
                v = nxt[i]
                if degree[v] == 1:
                    frontier[fsize] = v
                    fsize += 1
        return n_peeled, rounds, PEEL_OK


def peel_arrays_numba(edges, degree, edge_xor):
    """Run the compiled peeling loop; returns ``(n_peeled, order, alive, rounds, status)``.

    ``degree`` and ``edge_xor`` are the freshly built accumulators from
    :func:`repro.kernels.peeling.build_accumulators` (consumed — mutated
    in place).  Only called by the driver when :data:`NUMBA_AVAILABLE`.
    """
    if not NUMBA_AVAILABLE:  # pragma: no cover - registry prevents this
        raise RuntimeError("numba peeling selected but numba is not importable")
    m = edges.shape[0]
    alive = np.ones(m, dtype=np.bool_)
    peeled_order = np.empty(m, dtype=np.int64)
    n_peeled, rounds, status = _peel_core(
        edges, degree, edge_xor, alive, peeled_order
    )
    return n_peeled, peeled_order, alive, rounds, status
