"""Batched flat-array peeling kernel (2-core computation).

Peeling repeatedly removes edges incident to a degree-1 vertex until only
the hypergraph's 2-core remains — the decoding process of erasure codes
and invertible Bloom lookup tables, and the workload of the follow-up
paper ([30], Mitzenmacher–Thaler) whose threshold experiments this
repository reproduces.  This module is the contract home and the numpy
backend; :mod:`repro.kernels.numba_peeling` compiles the identical
process, and :func:`repro.peeling.decoder.peel_reference` is the slow
executable specification every backend is pinned against.

**Process contract** (normative — all backends must match it exactly):

1. State is two flat per-vertex accumulators built from the ``(m, d)``
   edge array: ``degree[v]`` counts incidences (an edge hitting a vertex
   twice contributes 2) and ``edge_xor[v]`` XORs the shifted ids
   ``e + 1`` of incident edges (the shift makes edge 0 distinguishable
   from "empty").  A degree-1 vertex's XOR therefore *is* its unique
   remaining edge — no adjacency lists exist anywhere.
2. Peeling proceeds in **synchronous rounds**.  A round's frontier is
   the set of vertices with degree exactly 1 at round start; each
   frontier vertex claims the edge ``edge_xor[v] - 1``.  The round peels
   the *distinct* claimed edges in increasing edge-id order (several
   frontier vertices may claim one edge; it peels once).  Removing an
   edge decrements the degree and XORs the id out of every incidence,
   multiplicity included.
3. ``rounds`` counts the synchronous generations that peeled at least
   one edge — the parallel depth of the process (O(log n) below the
   density-evolution threshold).  ``peeled_order`` concatenates the
   per-round batches, so it is identical across backends; ``success``
   is "every edge peeled", and ``core_edges`` lists the 2-core in
   ascending id order.

Vertices within an edge may repeat (double hashing over a composite
modulus, or with-replacement schemes): a repeated incidence XORs the id
twice (cancelling) and adds 2 to the degree, so such an edge can never
be recovered *through* that vertex — exactly the multiplicity-aware
semantics of the reference decoder.

The numpy backend materializes the contract with ``np.bincount`` /
``np.bitwise_xor.at`` accumulator builds and per-round vectorized
claim/dedupe/scatter steps over a worklist of touched vertices — no
per-edge Python.  Throughput versus the reference decoder is tracked in
``BENCH_peeling.json`` (see ``benchmarks/bench_peeling.py`` and
``docs/peeling.md``).
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError

__all__ = [
    "PeelOutcome",
    "build_accumulators",
    "peel_arrays_numpy",
    "validate_edges",
]


class PeelOutcome(NamedTuple):
    """Raw kernel result: the four contract observables.

    Attributes
    ----------
    success:
        True when every edge was peeled (the 2-core is empty).
    peeled_order:
        Edge ids in recovery order (ascending within each round).
    core_edges:
        Ascending ids of the edges stuck in the 2-core.
    rounds:
        Synchronous rounds that peeled at least one edge.
    """

    success: bool
    peeled_order: np.ndarray
    core_edges: np.ndarray
    rounds: int


def validate_edges(edges: np.ndarray, n_vertices: int) -> np.ndarray:
    """Check an edge array against the kernel contract; returns it as int64.

    ``edges`` must be a 2-D ``(m, d)`` integer array whose entries lie in
    ``[0, n_vertices)``.  Raises
    :class:`~repro.errors.ConfigurationError` otherwise — an
    out-of-range vertex would silently corrupt the flat accumulators.
    """
    edges = np.asarray(edges)
    if edges.ndim != 2:
        raise ConfigurationError(
            f"edges must be a 2-D (m, d) array, got shape {edges.shape}"
        )
    if not np.issubdtype(edges.dtype, np.integer):
        raise ConfigurationError(
            f"edges must be an integer array, got dtype {edges.dtype}"
        )
    if n_vertices < 1:
        raise ConfigurationError(
            f"n_vertices must be positive, got {n_vertices}"
        )
    if edges.size and (
        int(edges.min()) < 0 or int(edges.max()) >= n_vertices
    ):
        raise ConfigurationError(
            f"edge vertices must lie in [0, {n_vertices}); got range "
            f"[{int(edges.min())}, {int(edges.max())}]"
        )
    if edges.dtype != np.int64:
        edges = edges.astype(np.int64)
    return edges


def build_accumulators(
    edges: np.ndarray, n_vertices: int
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized build of the ``(degree, edge_xor)`` accumulator pair.

    One ``np.bincount`` over the flattened incidences plus one
    ``np.bitwise_xor.at`` scatter of the shifted edge ids — the flat-array
    replacement for the historical O(m·d) pure-Python double loop, shared
    by the kernel backends and the reference oracle.
    """
    m, d = edges.shape
    flat = edges.ravel()
    degree = np.bincount(flat, minlength=n_vertices).astype(np.int64)
    edge_xor = np.zeros(n_vertices, dtype=np.int64)
    ids = np.repeat(np.arange(1, m + 1, dtype=np.int64), d)
    np.bitwise_xor.at(edge_xor, flat, ids)
    return degree, edge_xor


def peel_arrays_numpy(edges: np.ndarray, n_vertices: int) -> PeelOutcome:
    """Peel ``edges`` to the 2-core with the vectorized numpy backend.

    Implements the module contract with no per-edge Python: accumulator
    build via :func:`build_accumulators`, then per round one fancy-gather
    of the frontier's claimed edges, one ``np.unique`` dedupe (which also
    yields the contract's ascending peel order), and two scatters
    (``np.subtract.at`` / ``np.bitwise_xor.at``) over the incidences of
    the peeled batch.  The next frontier is read off the touched vertices
    only, so per-round cost is proportional to the work actually done.

    Parameters
    ----------
    edges:
        ``(m, d)`` int64 vertex array (validate with
        :func:`validate_edges` first; :func:`repro.kernels.run_peeling_kernel`
        does).
    n_vertices:
        Vertex-space size.

    Returns
    -------
    PeelOutcome
        The four contract observables.
    """
    m, d = edges.shape
    if m == 0:
        empty = np.empty(0, dtype=np.int64)
        return PeelOutcome(True, empty, empty.copy(), 0)
    degree, edge_xor = build_accumulators(edges, n_vertices)
    alive = np.ones(m, dtype=bool)
    peeled_batches: list[np.ndarray] = []
    rounds = 0
    # Worklist: vertices whose degree may have just become 1.  Duplicates
    # are harmless (duplicate claims collapse in the np.unique below).
    frontier = np.flatnonzero(degree == 1)
    while frontier.size:
        batch = np.unique(edge_xor[frontier] - 1)
        if batch.size and (batch[0] < 0 or not alive[batch].all()):
            # Unreachable for well-formed accumulators: a degree-1
            # vertex's XOR is always one alive edge.  Guarded so state
            # corruption fails loudly instead of peeling garbage.
            raise SimulationError(
                "peeling invariant violated: a degree-1 vertex claimed a "
                "dead or out-of-range edge"
            )
        alive[batch] = False
        peeled_batches.append(batch)
        rounds += 1
        touched = edges[batch].ravel()
        np.subtract.at(degree, touched, 1)
        np.bitwise_xor.at(edge_xor, touched, np.repeat(batch + 1, d))
        frontier = touched[degree[touched] == 1]
    peeled_order = (
        np.concatenate(peeled_batches)
        if peeled_batches
        else np.empty(0, dtype=np.int64)
    )
    core = np.flatnonzero(alive)
    return PeelOutcome(core.size == 0, peeled_order, core, rounds)
