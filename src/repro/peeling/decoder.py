"""Peeling decoder (2-core computation): reference oracle + kernel wrapper.

Peeling repeatedly finds a vertex of degree 1, "recovers" its unique
incident edge, and removes that edge (decrementing the degrees of its other
vertices) — the decoding procedure of erasure codes and invertible Bloom
lookup tables.  Peeling succeeds when every edge is removed, i.e. the
hypergraph's 2-core is empty.

Two implementations live behind one result type:

- :func:`peel_reference` — the slow, obviously-correct executable
  specification of the synchronous-round contract (per-vertex degree
  counter + XOR of incident edge ids; a degree-1 vertex's XOR *is* its
  remaining edge, so no adjacency lists are needed).
- :func:`peel` — a thin wrapper over the batched flat-array kernel
  (:func:`repro.kernels.run_peeling_kernel`), which resolves a backend
  (``numpy`` / optional ``numba``) through the standard registry.  All
  backends are exactly equivalent to the oracle on success, peel order,
  core-edge set, and round count; the contract itself is documented in
  :mod:`repro.kernels.peeling`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.peeling.hypergraph import Hypergraph

__all__ = ["PeelResult", "peel", "peel_reference"]


@dataclass(frozen=True)
class PeelResult:
    """Outcome of peeling a hypergraph.

    Attributes
    ----------
    success:
        True when every edge was peeled (empty 2-core).
    peeled_order:
        Edge ids in the order they were recovered (ascending within each
        synchronous round — deterministic and backend-independent).
    core_edges:
        Ids of edges left in the 2-core (empty on success).
    rounds:
        Number of synchronous peeling rounds (parallel-depth of the
        process; grows like O(log n) below threshold).
    """

    success: bool
    peeled_order: np.ndarray
    core_edges: np.ndarray
    rounds: int

    @property
    def core_fraction(self) -> float:
        """Fraction of edges stuck in the core."""
        total = len(self.peeled_order) + len(self.core_edges)
        return len(self.core_edges) / total if total else 0.0


def peel_reference(graph: Hypergraph) -> PeelResult:
    """Peel ``graph`` to its 2-core with the reference (oracle) decoder.

    The executable specification of the synchronous-round contract in
    :mod:`repro.kernels.peeling`: each round's frontier is the set of
    degree-1 vertices at round start, the round peels the distinct
    claimed edges in ascending edge-id order, and ``rounds`` counts the
    generations that peeled at least one edge.  The per-round body is
    deliberately plain Python (small sets, explicit loops) — slow, but
    easy to audit; the accumulator build is vectorized so the oracle
    itself handles m = 10^6 inside CI (satellite of ISSUE 8).

    Edges with repeated vertices contribute their multiplicity to that
    vertex's degree (an edge incident to a vertex twice can never be
    recovered through it once the degree logic is multiplicity-aware;
    XOR-ing the edge id twice cancels, which handles this correctly).
    """
    n, m = graph.n_vertices, graph.n_edges
    degree = np.zeros(n, dtype=np.int64)
    edge_xor = np.zeros(n, dtype=np.int64)
    if m:
        flat = graph.edges.ravel()
        degree = np.bincount(flat, minlength=n).astype(np.int64)
        # Shift ids so edge 0 is XOR-distinguishable from "empty".
        ids = np.repeat(np.arange(1, m + 1, dtype=np.int64), graph.d)
        np.bitwise_xor.at(edge_xor, flat, ids)

    alive = np.ones(m, dtype=bool)
    peeled: list[int] = []
    frontier = [int(v) for v in np.flatnonzero(degree == 1)]
    rounds = 0
    while frontier:
        # Distinct claimed edges, peeled in ascending id order.
        batch = sorted({int(edge_xor[v]) - 1 for v in frontier})
        touched: list[int] = []
        for e in batch:
            alive[e] = False
            peeled.append(e)
            for u in graph.edges[e]:
                degree[u] -= 1
                edge_xor[u] ^= e + 1
                touched.append(int(u))
        rounds += 1
        # Next frontier is read only after the whole round's removals
        # (two same-round edges may share a vertex, dropping it to 0).
        frontier = [u for u in touched if degree[u] == 1]

    core = np.flatnonzero(alive)
    return PeelResult(
        success=core.size == 0,
        peeled_order=np.array(peeled, dtype=np.int64),
        core_edges=core,
        rounds=rounds,
    )


def peel(graph: Hypergraph, *, backend=None, metrics=None) -> PeelResult:
    """Peel ``graph`` to its 2-core through a kernel backend.

    Thin wrapper over :func:`repro.kernels.run_peeling_kernel` (explicit
    ``backend`` > ``REPRO_BACKEND`` env > auto resolution); exactly
    equivalent to :func:`peel_reference` on every observable.  ``metrics``
    optionally receives the kernel timer/counters.
    """
    from repro.kernels import run_peeling_kernel

    outcome = run_peeling_kernel(
        graph.edges, graph.n_vertices, backend=backend, metrics=metrics
    )
    return PeelResult(
        success=outcome.success,
        peeled_order=outcome.peeled_order,
        core_edges=outcome.core_edges,
        rounds=outcome.rounds,
    )
