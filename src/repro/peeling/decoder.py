"""Queue-based peeling decoder (2-core computation).

Peeling repeatedly finds a vertex of degree 1, "recovers" its unique
incident edge, and removes that edge (decrementing the degrees of its other
vertices) — the decoding procedure of erasure codes and invertible Bloom
lookup tables.  Peeling succeeds when every edge is removed, i.e. the
hypergraph's 2-core is empty.

The implementation is the standard O(m·d) IBLT trick: per vertex keep a
degree counter and the XOR of incident edge ids; a degree-1 vertex's XOR
*is* its remaining edge, so no adjacency lists are needed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.peeling.hypergraph import Hypergraph

__all__ = ["PeelResult", "peel"]


@dataclass(frozen=True)
class PeelResult:
    """Outcome of peeling a hypergraph.

    Attributes
    ----------
    success:
        True when every edge was peeled (empty 2-core).
    peeled_order:
        Edge ids in the order they were recovered.
    core_edges:
        Ids of edges left in the 2-core (empty on success).
    rounds:
        Number of synchronous peeling rounds (parallel-depth of the
        process; grows like O(log n) below threshold).
    """

    success: bool
    peeled_order: np.ndarray
    core_edges: np.ndarray
    rounds: int

    @property
    def core_fraction(self) -> float:
        """Fraction of edges stuck in the core."""
        total = len(self.peeled_order) + len(self.core_edges)
        return len(self.core_edges) / total if total else 0.0


def peel(graph: Hypergraph) -> PeelResult:
    """Peel ``graph`` to its 2-core.

    Edges with repeated vertices contribute their multiplicity to that
    vertex's degree (an edge incident to a vertex twice can never be
    recovered through it once the degree logic is multiplicity-aware;
    XOR-ing the edge id twice cancels, which handles this correctly).
    """
    n, m = graph.n_vertices, graph.n_edges
    degree = np.zeros(n, dtype=np.int64)
    edge_xor = np.zeros(n, dtype=np.int64)
    for e in range(m):
        for v in graph.edges[e]:
            degree[v] += 1
            edge_xor[v] ^= e + 1  # shift ids so id 0 is XOR-distinguishable

    alive = np.ones(m, dtype=bool)
    peeled: list[int] = []
    # Synchronous rounds: process the current frontier entirely before
    # counting the next round (gives the parallel peeling depth).
    frontier = deque(int(v) for v in np.flatnonzero(degree == 1))
    rounds = 0
    while frontier:
        rounds += 1
        next_frontier: deque[int] = deque()
        while frontier:
            v = frontier.popleft()
            if degree[v] != 1:
                continue  # stale entry: vertex lost its edge meanwhile
            e = edge_xor[v] - 1
            if e < 0 or not alive[e]:  # pragma: no cover - defensive
                continue
            alive[e] = False
            peeled.append(int(e))
            for u in graph.edges[e]:
                degree[u] -= 1
                edge_xor[u] ^= e + 1
                if degree[u] == 1:
                    next_frontier.append(int(u))
        frontier = next_frontier

    core = np.flatnonzero(alive)
    return PeelResult(
        success=core.size == 0,
        peeled_order=np.array(peeled, dtype=np.int64),
        core_edges=core,
        rounds=rounds,
    )
