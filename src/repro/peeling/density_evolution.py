"""Density evolution — the fluid limit of peeling.

For a random d-uniform hypergraph with ``m = c·n`` edges (vertex degrees
asymptotically Poisson(c·d)), the probability ``β_t`` that a random
edge-vertex incidence survives ``t`` peeling rounds obeys

    ``β_{t+1} = (1 − e^{−c·d·β_t})^{d−1}``,     β_0 = 1.

(An incidence survives when each of the other ``d−1`` vertices of its edge
has at least one *other* surviving incidence; "another surviving incidence
at a Poisson(cd) vertex" has probability ``1 − e^{−c·d·β}``.)

Peeling succeeds asymptotically iff the recursion converges to 0; the
threshold ``c*_d`` is the largest density for which it does.  This module
computes the fixed point, the threshold (bisection — validated against the
known literature values, transcribed once as the
``derived/peeling-threshold/d*`` anchors in :mod:`repro.certify.anchors`),
and the asymptotic 2-core size.

The same equations govern double-hashed hypergraphs — that is the follow-up
paper's analogue of this paper's Theorem 8 — which the experiment module
checks empirically.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = [
    "survival_fixed_point",
    "peeling_threshold",
    "core_edge_fraction",
]

_CONVERGED = 1e-12


def _validate(c: float, d: int) -> None:
    if c < 0:
        raise ConfigurationError(f"density must be non-negative, got {c}")
    if d < 2:
        raise ConfigurationError(f"d must be at least 2, got {d}")


def survival_fixed_point(c: float, d: int, *, max_iters: int = 20000) -> float:
    """Limit of the survival recursion ``β ← (1 − e^{−cdβ})^{d−1}``.

    Returns 0.0 when peeling succeeds asymptotically at density ``c``; a
    positive fixed point is the incidence-survival probability of the core.
    """
    _validate(c, d)
    beta = 1.0
    for _ in range(max_iters):
        new = (1.0 - math.exp(-c * d * beta)) ** (d - 1)
        if abs(new - beta) < _CONVERGED:
            return 0.0 if new < 1e-9 else new
        beta = new
    return beta  # pragma: no cover - slow convergence near threshold


def peeling_threshold(d: int, *, precision: float = 1e-9) -> float:
    """Largest density ``c`` at which peeling succeeds w.h.p.

    >>> round(peeling_threshold(3), 3)
    0.818
    """
    if d < 2:
        raise ConfigurationError(f"d must be at least 2, got {d}")
    if d == 2:
        # 2-uniform: ordinary graphs; the 2-core appears at c = 1/2
        # (cycle emergence), recoverable from the same recursion.
        pass
    lo, hi = 0.01, 1.5
    while hi - lo > precision:
        mid = 0.5 * (lo + hi)
        if survival_fixed_point(mid, d) == 0.0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def core_edge_fraction(c: float, d: int) -> float:
    """Asymptotic fraction of edges in the 2-core at density ``c``.

    An edge is in the core iff all ``d`` of its incidences survive; with
    survival fixed point β, that is ``(1 − e^{−cdβ})^d = β^{d/(d−1)}``.
    """
    beta = survival_fixed_point(c, d)
    if beta == 0.0:
        return 0.0
    return beta ** (d / (d - 1))
