"""The threshold-comparison experiment of the follow-up paper [30].

Sweep the edge density ``c = m/n`` across the peeling threshold and
measure, for fully-random vs double-hashed edges:

- the **complete-recovery probability** (empty 2-core), and
- the **mean fraction of edges left in the core**.

This experiment exposes the one place the two schemes genuinely part ways —
the paper's own footnote-1 caveat.  Two balls pick the *same set* of d bins
with probability ``O(n^{−d})`` under full randomness but ``Θ(1/(n·φ(n)))``
under double hashing; with ``m = Θ(n)`` edges there are ``Θ(n²)`` pairs, so
a duplicate hyperedge exists with **constant** probability — and a
duplicated edge is an unpeelable 2-core of size 2.  Consequently:

- complete recovery fails with constant probability under double hashing
  even well below the density-evolution threshold (empirically, every such
  failure is a pure duplicate-edge core — verified in the test suite);
- the *fraction peeled* is unaffected: stuck cores have O(1) size, so the
  core fraction is O(1/n) below threshold and matches density evolution
  above it for both schemes — this is the sense in which the fluid-limit
  equivalence (this paper's Theorem 8) carries over to peeling.

Deployed IBLT/erasure-code implementations using double hashing must
therefore either tolerate O(1)-size residue or deduplicate key collisions —
a design note absent from naive "swap in double hashing" advice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing import DoubleHashingChoices, FullyRandomChoices
from repro.peeling.decoder import peel
from repro.peeling.density_evolution import peeling_threshold
from repro.peeling.hypergraph import build_hypergraph
from repro.rng import default_generator

__all__ = ["ThresholdExperiment", "threshold_experiment"]


@dataclass(frozen=True)
class ThresholdExperiment:
    """Results of a density sweep.

    Attributes
    ----------
    densities:
        Swept ``c = m/n`` values.
    success_random, success_double:
        Success probability (empty 2-core) per density, per scheme.
    asymptotic_threshold:
        The density-evolution threshold ``c*_d`` for reference.
    """

    n_vertices: int
    d: int
    densities: np.ndarray
    success_random: np.ndarray
    success_double: np.ndarray
    core_fraction_random: np.ndarray
    core_fraction_double: np.ndarray
    asymptotic_threshold: float

    def empirical_threshold(self, scheme: str = "double") -> float:
        """Density where the success curve crosses 1/2 (linear interp)."""
        curve = (
            self.success_double if scheme == "double" else self.success_random
        )
        below = np.flatnonzero(curve < 0.5)
        if below.size == 0:
            return float(self.densities[-1])
        i = below[0]
        if i == 0:
            return float(self.densities[0])
        c0, c1 = self.densities[i - 1], self.densities[i]
        y0, y1 = curve[i - 1], curve[i]
        if y0 == y1:  # pragma: no cover - flat segment
            return float(c0)
        return float(c0 + (y0 - 0.5) * (c1 - c0) / (y0 - y1))


def threshold_experiment(
    n_vertices: int,
    d: int,
    densities: np.ndarray | list[float],
    trials: int,
    *,
    seed: int | None = None,
    backend: str | None = None,
) -> ThresholdExperiment:
    """Sweep densities; measure peeling success for both schemes.

    Parameters
    ----------
    n_vertices:
        Hypergraph vertex count (larger = sharper threshold).
    d:
        Edge size.
    densities:
        Edge densities ``c = m/n`` to test, ascending.
    trials:
        Hypergraphs per (density, scheme) cell.
    seed:
        Seed for hypergraph construction (one stream across the sweep).
    backend:
        Peeling-kernel backend (``"numpy"`` / ``"numba"``), or None for
        env/auto resolution; results are backend-independent by the
        kernel equivalence contract.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    densities = np.asarray(densities, dtype=float)
    if densities.size == 0:
        raise ConfigurationError("densities must be non-empty")
    rng = default_generator(seed)
    schemes = {
        "random": FullyRandomChoices(n_vertices, d),
        "double": DoubleHashingChoices(n_vertices, d),
    }
    success = {name: np.zeros(len(densities)) for name in schemes}
    core_frac = {name: np.zeros(len(densities)) for name in schemes}
    for i, c in enumerate(densities):
        m = int(round(c * n_vertices))
        for name, scheme in schemes.items():
            wins = 0
            fracs = 0.0
            for _ in range(trials):
                graph = build_hypergraph(scheme, m, seed=rng)
                result = peel(graph, backend=backend)
                wins += result.success
                fracs += result.core_fraction
            success[name][i] = wins / trials
            core_frac[name][i] = fracs / trials
    return ThresholdExperiment(
        n_vertices=n_vertices,
        d=d,
        densities=densities,
        success_random=success["random"],
        success_double=success["double"],
        core_fraction_random=core_frac["random"],
        core_fraction_double=core_frac["double"],
        asymptotic_threshold=peeling_threshold(d),
    )
