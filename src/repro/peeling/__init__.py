"""Peeling processes on random hypergraphs — the paper's "next frontier".

The paper's conclusion singles out structures analysed by fluid limits —
"such as low-density parity-check codes" — as the natural next setting for
double hashing, and the follow-up work it cites ([30], Mitzenmacher–Thaler,
*Peeling Arguments and Double Hashing*) studies exactly this: random
``d``-uniform hypergraphs where each hyperedge's ``d`` vertices are chosen
by double hashing instead of independently, peeled down to their 2-core.
Peeling is the decoding procedure behind erasure-correcting codes, IBLTs,
and cuckoo-hashing analyses.

This subpackage provides:

- :mod:`repro.peeling.hypergraph` — hypergraph construction directly from
  any :class:`~repro.hashing.base.ChoiceScheme` (the same objects the
  balls-and-bins engines use);
- :mod:`repro.peeling.decoder` — the peeling decoder: ``peel`` (batched
  flat-array kernel via :func:`repro.kernels.run_peeling_kernel`, numpy
  or numba backends) and ``peel_reference`` (the slow executable
  specification), exactly equivalent on every observable;
- :mod:`repro.peeling.density_evolution` — the fluid limit of peeling:
  the survival recursion ``β ← (1 − e^{−c·d·β})^{d−1}``, numeric threshold
  solver (reproducing the known literature thresholds — the
  ``derived/peeling-threshold/d*`` anchors of :mod:`repro.certify.anchors`),
  and asymptotic core sizes;
- :mod:`repro.peeling.experiment` — the threshold-comparison experiment of
  [30]: success probability vs edge density for fully random vs
  double-hashed edges.
"""

from repro.peeling.decoder import PeelResult, peel, peel_reference
from repro.peeling.density_evolution import (
    core_edge_fraction,
    peeling_threshold,
    survival_fixed_point,
)
from repro.peeling.experiment import threshold_experiment
from repro.peeling.hypergraph import build_hypergraph

__all__ = [
    "PeelResult",
    "build_hypergraph",
    "core_edge_fraction",
    "peel",
    "peel_reference",
    "peeling_threshold",
    "survival_fixed_point",
    "threshold_experiment",
]
