"""Random d-uniform hypergraph construction from choice schemes.

A hypergraph here is just an ``(m, d)`` integer array: row ``e`` lists the
``d`` vertices of hyperedge ``e``.  Construction reuses the library's
:class:`~repro.hashing.base.ChoiceScheme` objects, so "fully random
hypergraph" vs "double-hashed hypergraph" is the same one-argument switch
as everywhere else — which is the entire point of the comparison in the
paper's follow-up [30].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.base import ChoiceScheme
from repro.rng import default_generator

__all__ = ["Hypergraph", "build_hypergraph"]


@dataclass(frozen=True)
class Hypergraph:
    """A d-uniform hypergraph.

    Attributes
    ----------
    n_vertices:
        Vertex count.
    edges:
        ``(m, d)`` array; row ``e`` holds edge ``e``'s vertices.  Vertices
        within a row are distinct when the generating scheme guarantees it
        (double hashing does; with-replacement schemes may repeat).
    """

    n_vertices: int
    edges: np.ndarray

    @property
    def n_edges(self) -> int:
        return self.edges.shape[0]

    @property
    def d(self) -> int:
        return self.edges.shape[1]

    @property
    def density(self) -> float:
        """Edges per vertex — the control parameter ``c = m/n``."""
        return self.n_edges / self.n_vertices

    def vertex_degrees(self) -> np.ndarray:
        """Degree of every vertex (repeated incidences counted)."""
        return np.bincount(self.edges.ravel(), minlength=self.n_vertices)


def build_hypergraph(
    scheme: ChoiceScheme,
    n_edges: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> Hypergraph:
    """Draw ``n_edges`` hyperedges from ``scheme``.

    ``scheme.n_bins`` is the vertex count and ``scheme.d`` the edge size —
    an edge is exactly "the d choices of one ball".
    """
    if n_edges < 0:
        raise ConfigurationError(f"n_edges must be non-negative, got {n_edges}")
    rng = default_generator(seed)
    if n_edges == 0:
        edges = np.empty((0, scheme.d), dtype=np.int64)
    else:
        edges = scheme.batch(n_edges, rng)
    return Hypergraph(n_vertices=scheme.n_bins, edges=edges)
