"""Entry point: ``python -m repro``."""

import sys

from repro.experiments.cli import main

sys.exit(main())
