"""Measurement accumulators for queueing simulations.

The paper reports "the average time over all packets after time 1000" —
mean sojourn time with a burn-in cutoff.  :class:`SojournAccumulator`
implements that plus streaming variance (Welford) and a normal-approximation
confidence interval, and tracks the time-averaged total queue length for
cross-checking against Little's law.  It also counts raw arrival/departure
events and integrates the busy-queue count, so simulators built on it can
report event throughput and busy fraction (the quantities
:class:`~repro.types.QueueingResult` carries for the metrics layer).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["SojournAccumulator"]


@dataclass
class SojournAccumulator:
    """Streaming statistics over completed-job sojourn times.

    Parameters
    ----------
    burn_in:
        Jobs *arriving* before this simulated time are excluded (matching
        the paper's protocol of discarding the warm-up transient).
    """

    burn_in: float = 0.0
    count: int = 0
    # Raw event counters over the whole run (burn-in included).
    n_arrivals: int = 0
    n_departures: int = 0
    _mean: float = 0.0
    _m2: float = 0.0
    # Time-integral of the total number of jobs in the system after burn-in.
    _area: float = 0.0
    # Time-integral of the busy-queue count after burn-in.
    _busy_area: float = 0.0
    _area_start: float = 0.0
    _last_time: float = 0.0
    _last_total: int = 0
    _last_busy: int = 0

    def observe_sojourn(self, arrival_time: float, departure_time: float) -> None:
        """Record one completed job (ignored when it arrived during burn-in)."""
        if departure_time < arrival_time:
            raise ValueError(
                f"departure {departure_time} precedes arrival {arrival_time}"
            )
        if arrival_time < self.burn_in:
            return
        sojourn = departure_time - arrival_time
        self.count += 1
        delta = sojourn - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (sojourn - self._mean)

    def count_arrival(self) -> None:
        """Count one arrival event (burn-in included)."""
        self.n_arrivals += 1

    def count_departure(self) -> None:
        """Count one departure event (burn-in included)."""
        self.n_departures += 1

    @property
    def n_events(self) -> int:
        """Total events counted (arrivals + departures)."""
        return self.n_arrivals + self.n_departures

    def observe_population(
        self, time: float, total_jobs: int, busy_queues: int | None = None
    ) -> None:
        """Record job count (and optionally busy count) after an event.

        Must be called in non-decreasing time order; the time-averages are
        accumulated only past ``burn_in``.  When ``busy_queues`` is given,
        the busy-queue count is integrated too, feeding
        :meth:`mean_busy_queues`.
        """
        if time > self.burn_in:
            effective_last = max(self._last_time, self.burn_in)
            self._area += self._last_total * (time - effective_last)
            if busy_queues is not None:
                self._busy_area += self._last_busy * (time - effective_last)
        self._last_time = time
        self._last_total = total_jobs
        if busy_queues is not None:
            self._last_busy = busy_queues

    @property
    def mean(self) -> float:
        """Mean sojourn time over recorded jobs."""
        if self.count == 0:
            raise ValueError("no sojourn times recorded")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1) of sojourn times."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI for the mean (i.i.d. approximation).

        Sojourn times of nearby jobs are positively correlated, so this
        underestimates the true width; it is reported as a scale indicator,
        not a formal guarantee.
        """
        half = z * math.sqrt(self.variance / max(self.count, 1))
        return (self.mean - half, self.mean + half)

    def mean_total_jobs(self, final_time: float) -> float:
        """Time-averaged total jobs in system between burn-in and
        ``final_time``."""
        if final_time <= self.burn_in:
            raise ValueError("final_time must exceed the burn-in period")
        effective_last = max(self._last_time, self.burn_in)
        area = self._area + self._last_total * (final_time - effective_last)
        return area / (final_time - self.burn_in)

    def mean_busy_queues(self, final_time: float) -> float:
        """Time-averaged busy-queue count between burn-in and ``final_time``.

        Requires ``observe_population`` to have been fed ``busy_queues``;
        divide by the number of queues to obtain the busy fraction.
        """
        if final_time <= self.burn_in:
            raise ValueError("final_time must exceed the burn-in period")
        effective_last = max(self._last_time, self.burn_in)
        area = self._busy_area + self._last_busy * (final_time - effective_last)
        return area / (final_time - self.burn_in)
