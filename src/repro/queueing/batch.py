"""Multi-run queueing experiments — the paper's Table 8 protocol.

The paper reports the average over **100 independent simulations** of
10000 seconds each.  :func:`run_queueing_experiment` reproduces that
protocol: independent runs with spawned seed streams (optionally across a
process pool), aggregated into a mean with a between-run confidence
interval — the statistically honest way to quote a supermarket-model
number, since within-run sojourn times are autocorrelated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.base import ChoiceScheme
from repro.metrics import global_registry
from repro.parallel import map_trial_chunks
from repro.queueing.supermarket_sim import simulate_supermarket

__all__ = ["QueueingExperiment", "run_queueing_experiment"]


@dataclass(frozen=True)
class QueueingExperiment:
    """Aggregate of independent queueing runs.

    Attributes
    ----------
    mean_sojourn_time:
        Mean of per-run means (the paper's Table 8 quantity).
    std_between_runs:
        Sample standard deviation of per-run means.
    runs:
        Number of independent runs.
    per_run:
        The individual per-run mean sojourn times.
    """

    mean_sojourn_time: float
    std_between_runs: float
    runs: int
    per_run: np.ndarray

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal CI over run means (runs are genuinely independent)."""
        half = z * self.std_between_runs / math.sqrt(max(self.runs, 1))
        return (self.mean_sojourn_time - half, self.mean_sojourn_time + half)


@dataclass(frozen=True)
class _QueueTask:
    scheme: ChoiceScheme
    lam: float
    sim_time: float
    burn_in: float
    backend: str | None = None


def _run_queue_chunk(
    task: _QueueTask, chunk_runs: int, seed_seq: np.random.SeedSequence
) -> list[tuple[float, int]]:
    rng = np.random.default_rng(seed_seq)
    out = []
    for _ in range(chunk_runs):
        result = simulate_supermarket(
            task.scheme,
            task.lam,
            task.sim_time,
            burn_in=task.burn_in,
            seed=rng,
            backend=task.backend,
        )
        out.append((result.mean_sojourn_time, result.n_events or 0))
    return out


def run_queueing_experiment(
    scheme: ChoiceScheme,
    lam: float,
    *,
    runs: int = 10,
    sim_time: float = 1000.0,
    burn_in: float = 100.0,
    seed: int | None = None,
    workers: int = 1,
    backend: str | None = None,
) -> QueueingExperiment:
    """Run ``runs`` independent supermarket simulations and aggregate.

    Parameters mirror :func:`~repro.queueing.simulate_supermarket`;
    ``workers > 1`` fans runs across a process pool with deterministic
    spawned seeds (bit-identical to the serial result).  ``backend``
    travels inside the pickled chunk task, so worker processes run the
    same supermarket kernel as the parent.  Aggregate event throughput is
    published to the global metrics registry (``queueing.runs`` /
    ``queueing.events`` counters).
    """
    if runs < 1:
        raise ConfigurationError(f"runs must be positive, got {runs}")
    # One run per chunk: every run draws from its own spawned seed stream,
    # making results identical for any worker count.
    chunks = map_trial_chunks(
        _run_queue_chunk,
        _QueueTask(
            scheme=scheme,
            lam=lam,
            sim_time=sim_time,
            burn_in=burn_in,
            backend=backend,
        ),
        runs,
        seed=seed,
        workers=workers,
        chunks=runs,
    )
    per_run = np.array([m for chunk in chunks for m, _ in chunk])
    registry = global_registry()
    registry.increment("queueing.runs", len(per_run))
    registry.increment(
        "queueing.events", sum(e for chunk in chunks for _, e in chunk)
    )
    std = float(per_run.std(ddof=1)) if len(per_run) > 1 else 0.0
    return QueueingExperiment(
        mean_sojourn_time=float(per_run.mean()),
        std_between_runs=std,
        runs=len(per_run),
        per_run=per_run,
    )
