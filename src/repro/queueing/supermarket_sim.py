"""Event-driven supermarket-model simulator (thin kernel wrapper).

CTMC formulation
----------------
With exp(1) service at every queue, the system state (queue lengths) is a
continuous-time Markov chain whose transitions are:

- **arrival** at rate ``λn``: a customer draws ``d`` queues from the choice
  scheme and joins the shortest (ties uniform);
- **departure** at rate ``b`` (the number of busy queues): the departing
  queue is uniform among busy queues (memorylessness makes every busy
  server's residual service exp(1)).

So the simulator needs no event heap: it repeatedly draws the next event
type with probability proportional to the two rates and an Exp(λn + b)
inter-event time.

Since PR 5 the inner loop lives in the kernel subsystem:
:func:`simulate_supermarket` forwards to
:func:`repro.kernels.run_supermarket_kernel`, which selects a backend
(blocked numpy loop, or the numba JIT when installed) under the standard
explicit > ``REPRO_BACKEND`` > auto resolution.  All backends are
bit-identical to the oracle
:func:`repro.kernels.reference.simulate_supermarket_reference`; the
draw-stream contract lives in :mod:`repro.kernels.supermarket`.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.base import ChoiceScheme
from repro.kernels import run_supermarket_kernel
from repro.types import QueueingResult

__all__ = ["simulate_supermarket"]


def simulate_supermarket(
    scheme: ChoiceScheme,
    lam: float,
    sim_time: float,
    *,
    burn_in: float = 0.0,
    seed: int | np.random.Generator | None = None,
    max_total_jobs: int | None = None,
    track_tails: bool = False,
    tie_break: str = "random",
    backend: str | None = None,
) -> QueueingResult:
    """Simulate the supermarket model and report mean sojourn time.

    Parameters
    ----------
    scheme:
        Choice generator; ``scheme.n_bins`` queues, ``scheme.d`` choices per
        arrival.
    lam:
        Arrival rate per queue, in (0, 1) for stability.
    sim_time:
        Total simulated time (the paper ran 10000 time units).
    burn_in:
        Jobs arriving before this time are excluded from the sojourn mean
        (the paper used 1000).
    seed:
        Seed or generator.
    max_total_jobs:
        Safety valve: abort with :class:`~repro.errors.StabilityError` if
        the population exceeds this (defaults to ``50 · n``), which can only
        happen when the system is pushed outside its stability region.
    track_tails:
        When True, accumulate the time-averaged fraction of queues with at
        least ``i`` jobs (after burn-in) and return it as
        ``result.tail_fractions`` — directly comparable to the fluid
        equilibrium ``π_i``.
    tie_break:
        ``"random"`` (the standard model) or ``"left"`` — join the first
        shortest candidate in choice order, the asymmetric rule matching
        Vöcking's scheme when used with a partitioned choice scheme.
    backend:
        Kernel-backend name (``"numpy"``/``"numba"``); None resolves via
        ``REPRO_BACKEND`` then auto-detection.  Every backend returns
        bit-identical results for the same seed.
    """
    return run_supermarket_kernel(
        scheme,
        lam,
        sim_time,
        burn_in=burn_in,
        seed=seed,
        max_total_jobs=max_total_jobs,
        track_tails=track_tails,
        tie_break=tie_break,
        backend=backend,
    )
