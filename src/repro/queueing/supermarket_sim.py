"""Event-driven supermarket-model simulator.

CTMC formulation
----------------
With exp(1) service at every queue, the system state (queue lengths) is a
continuous-time Markov chain whose transitions are:

- **arrival** at rate ``λn``: a customer draws ``d`` queues from the choice
  scheme and joins the shortest (ties uniform);
- **departure** at rate ``b`` (the number of busy queues): the departing
  queue is uniform among busy queues (memorylessness makes every busy
  server's residual service exp(1)).

So the simulator needs no event heap: it repeatedly draws the next event
type with probability proportional to the two rates and an Exp(λn + b)
inter-event time.  Per-customer sojourn times require each queue to remember
its customers' arrival order, kept in per-queue FIFO lists.

Randomness budget: choice rows are prefetched from the scheme in blocks to
amortize numpy call overhead, and event-type/inter-arrival draws are also
blocked.  Tie-breaking among shortest candidates uses packed integer keys
(``length << TIE_BITS | random_bits``) shared with the kernel layer's
convention — one integer argmin per arrival, no float-noise temporaries.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hashing.base import ChoiceScheme
from repro.kernels import resolve_backend
from repro.queueing.events import IndexedSet
from repro.queueing.measures import SojournAccumulator
from repro.rng import default_generator
from repro.types import QueueingResult

__all__ = ["simulate_supermarket"]

_PREFETCH = 4096
# Tie-key width: collisions (equal length and key) fall back to the first
# candidate with probability 2**-20 per tie — unobservable at paper scale.
_TIE_BITS = 20


def simulate_supermarket(
    scheme: ChoiceScheme,
    lam: float,
    sim_time: float,
    *,
    burn_in: float = 0.0,
    seed: int | np.random.Generator | None = None,
    max_total_jobs: int | None = None,
    track_tails: bool = False,
    tie_break: str = "random",
    backend: str | None = None,
) -> QueueingResult:
    """Simulate the supermarket model and report mean sojourn time.

    Parameters
    ----------
    scheme:
        Choice generator; ``scheme.n_bins`` queues, ``scheme.d`` choices per
        arrival.
    lam:
        Arrival rate per queue, in (0, 1) for stability.
    sim_time:
        Total simulated time (the paper ran 10000 time units).
    burn_in:
        Jobs arriving before this time are excluded from the sojourn mean
        (the paper used 1000).
    seed:
        Seed or generator.
    max_total_jobs:
        Safety valve: abort with :class:`~repro.errors.StabilityError` if
        the population exceeds this (defaults to ``50 · n``), which can only
        happen when the system is pushed outside its stability region.
    track_tails:
        When True, accumulate the time-averaged fraction of queues with at
        least ``i`` jobs (after burn-in) and return it as
        ``result.tail_fractions`` — directly comparable to the fluid
        equilibrium ``π_i``.
    tie_break:
        ``"random"`` (the standard model) or ``"left"`` — join the first
        shortest candidate in choice order, the asymmetric rule matching
        Vöcking's scheme when used with a partitioned choice scheme.
    backend:
        Kernel-backend name, threaded through for uniformity with the
        balls-and-bins engines: it is validated (and a numba request
        without numba installed logs the standard fallback event), but
        the event-driven loop itself is scalar either way.
    """
    if not 0.0 < lam < 1.0:
        raise ConfigurationError(f"lambda must be in (0, 1), got {lam}")
    if sim_time <= 0:
        raise ConfigurationError(f"sim_time must be positive, got {sim_time}")
    if not 0.0 <= burn_in < sim_time:
        raise ConfigurationError(
            f"burn_in must lie in [0, sim_time); got {burn_in} vs {sim_time}"
        )
    if tie_break not in ("random", "left"):
        raise ConfigurationError(
            f"tie_break must be 'random' or 'left', got {tie_break!r}"
        )
    resolve_backend(backend)
    rng = default_generator(seed)
    n = scheme.n_bins
    if max_total_jobs is None:
        max_total_jobs = 50 * n

    queue_len = np.zeros(n, dtype=np.int64)
    # FIFO arrival-time lists per queue; service order within a queue is
    # first-come-first-served, so a departure completes queue's head job.
    fifos: list[list[float]] = [[] for _ in range(n)]
    busy = IndexedSet(n)
    acc = SojournAccumulator(burn_in=burn_in)

    arrival_rate = lam * n
    now = 0.0
    total_jobs = 0
    left_ties = tie_break == "left"

    # Time-averaged queue-length histogram (lazy-grown counts of queues at
    # each exact length, plus the time integral of each count).
    if track_tails:
        length_counts = np.zeros(64, dtype=np.int64)
        length_counts[0] = n
        length_area = np.zeros(64, dtype=np.float64)
        last_area_time = 0.0

    def _accumulate_tails(up_to: float) -> None:
        nonlocal last_area_time
        start = max(last_area_time, burn_in)
        stop = min(up_to, sim_time)
        if stop > start:
            length_area[: len(length_counts)] += length_counts * (stop - start)
        last_area_time = up_to

    # Prefetched randomness (refilled when exhausted).
    choice_block = scheme.batch(_PREFETCH, rng)
    tie_keys = rng.integers(
        0, 1 << _TIE_BITS, size=(_PREFETCH, scheme.d), dtype=np.int64
    )
    choice_idx = 0
    uniform_block = rng.random(_PREFETCH)
    expo_block = rng.exponential(1.0, _PREFETCH)
    event_idx = 0

    from repro.errors import StabilityError

    while True:
        if event_idx >= _PREFETCH:
            uniform_block = rng.random(_PREFETCH)
            expo_block = rng.exponential(1.0, _PREFETCH)
            event_idx = 0
        total_rate = arrival_rate + len(busy)
        now += expo_block[event_idx] / total_rate
        if track_tails:
            _accumulate_tails(now)
        if now >= sim_time:
            break
        is_arrival = uniform_block[event_idx] * total_rate < arrival_rate
        event_idx += 1

        if is_arrival:
            if choice_idx >= _PREFETCH:
                choice_block = scheme.batch(_PREFETCH, rng)
                tie_keys = rng.integers(
                    0, 1 << _TIE_BITS, size=(_PREFETCH, scheme.d), dtype=np.int64
                )
                choice_idx = 0
            choices = choice_block[choice_idx]
            lengths = queue_len[choices]
            if left_ties:
                target = int(choices[np.argmin(lengths)])
            else:
                # Packed integer keys: ordering between distinct lengths
                # is preserved; ties are broken by the random key bits.
                target = int(
                    choices[
                        np.argmin(
                            (lengths << _TIE_BITS) | tie_keys[choice_idx]
                        )
                    ]
                )
            choice_idx += 1
            fifos[target].append(now)
            if queue_len[target] == 0:
                busy.add(target)
            queue_len[target] += 1
            if track_tails:
                new_len = queue_len[target]
                if new_len + 1 > len(length_counts):
                    grow = np.zeros(len(length_counts), dtype=np.int64)
                    length_counts = np.concatenate([length_counts, grow])
                    length_area = np.concatenate(
                        [length_area, np.zeros(len(grow))]
                    )
                length_counts[new_len - 1] -= 1
                length_counts[new_len] += 1
            total_jobs += 1
            if total_jobs > max_total_jobs:
                raise StabilityError(
                    f"population exceeded {max_total_jobs} jobs at t={now:.1f}; "
                    "system appears unstable"
                )
        else:
            q = busy.sample(rng)
            arrival_time = fifos[q].pop(0)
            acc.observe_sojourn(arrival_time, now)
            queue_len[q] -= 1
            if queue_len[q] == 0:
                busy.remove(q)
            if track_tails:
                old_len = queue_len[q] + 1
                length_counts[old_len] -= 1
                length_counts[old_len - 1] += 1
            total_jobs -= 1
        acc.observe_population(now, total_jobs)

    mean_queue = (
        acc.mean_total_jobs(sim_time) / n if sim_time > burn_in else float("nan")
    )
    tails = None
    if track_tails:
        window = sim_time - burn_in
        fractions = length_area / (window * n)
        # Convert exact-length time fractions to >= i tail fractions.
        tails = np.cumsum(fractions[::-1])[::-1]
        tails = np.concatenate(([1.0], tails[1:]))
        nonzero = np.flatnonzero(tails > 1e-12)
        tails = tails[: (nonzero[-1] + 2 if nonzero.size else 1)]
    return QueueingResult(
        mean_sojourn_time=acc.mean if acc.count else float("nan"),
        completed_jobs=acc.count,
        mean_queue_length=mean_queue,
        sim_time=sim_time,
        tail_fractions=tails,
    )
