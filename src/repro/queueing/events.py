"""Support structures for the event-driven queueing simulator.

:class:`IndexedSet` is the classic O(1) add / O(1) remove / O(1)
uniform-sample dynamic set (dense array + position map), used to track the
set of busy queues so the departing queue can be drawn uniformly without
rejection sampling.
"""

from __future__ import annotations

import numpy as np

__all__ = ["IndexedSet"]


class IndexedSet:
    """A set over ``[0, capacity)`` with O(1) add/remove/uniform-sample.

    Elements are stored densely in ``_items[:size]``; ``_pos[x]`` holds the
    dense index of ``x`` (or -1).  Removal swaps the last element into the
    removed slot — order is not preserved, which is fine for uniform
    sampling.
    """

    __slots__ = ("_items", "_pos", "_size")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self._items = np.empty(capacity, dtype=np.int64)
        self._pos = np.full(capacity, -1, dtype=np.int64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, x: int) -> bool:
        return self._pos[x] >= 0

    def add(self, x: int) -> None:
        """Insert ``x``; no-op if already present."""
        if self._pos[x] >= 0:
            return
        self._items[self._size] = x
        self._pos[x] = self._size
        self._size += 1

    def remove(self, x: int) -> None:
        """Remove ``x``; raises KeyError if absent."""
        p = self._pos[x]
        if p < 0:
            raise KeyError(x)
        last = self._items[self._size - 1]
        self._items[p] = last
        self._pos[last] = p
        self._pos[x] = -1
        self._size -= 1

    def sample(self, rng: np.random.Generator) -> int:
        """Uniform random element; raises IndexError when empty."""
        if self._size == 0:
            raise IndexError("sample from empty IndexedSet")
        return int(self._items[rng.integers(0, self._size)])

    def to_array(self) -> np.ndarray:
        """Snapshot of the current members (copy)."""
        return self._items[: self._size].copy()
