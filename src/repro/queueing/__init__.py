"""Event-driven supermarket-model simulation (paper Table 8).

``n`` FIFO queues, Poisson(λn) arrivals, exp(1) service; each arrival joins
the shortest of ``d`` queues drawn from a pluggable
:class:`~repro.hashing.base.ChoiceScheme` — the same scheme objects the
balls-and-bins engines use, so "fully random vs. double hashing" is a
one-argument switch here too.

The simulator uses the continuous-time Markov chain directly (memoryless
service means the time to the next departure is Exp(#busy) and the departing
queue is uniform among busy queues), so no event heap is needed; see
:mod:`repro.queueing.supermarket_sim`.
"""

from repro.queueing.batch import QueueingExperiment, run_queueing_experiment
from repro.queueing.measures import SojournAccumulator
from repro.queueing.supermarket_sim import simulate_supermarket

__all__ = [
    "QueueingExperiment",
    "SojournAccumulator",
    "run_queueing_experiment",
    "simulate_supermarket",
]
