"""JSON serialization of results — persist and reload experiment outputs.

Long sweeps (paper-scale trials, density sweeps) should be resumable and
diffable; these helpers give every result dataclass a stable JSON form:

- :func:`distribution_to_dict` / :func:`distribution_from_dict` for
  :class:`~repro.types.LoadDistribution`;
- :func:`save_json` / :func:`load_json` with numpy-aware encoding;
- round-trips are exact for integer counts and bit-exact for floats.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.types import LoadDistribution, QueueingResult

__all__ = [
    "distribution_from_dict",
    "distribution_to_dict",
    "load_json",
    "queueing_result_from_dict",
    "queueing_result_to_dict",
    "save_json",
]


class _NumpyEncoder(json.JSONEncoder):
    """JSON encoder accepting numpy scalars and arrays."""

    def default(self, obj: Any) -> Any:
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        return super().default(obj)


def distribution_to_dict(dist: LoadDistribution) -> dict:
    """Stable dict form of a load distribution."""
    return {
        "kind": "LoadDistribution",
        "n_bins": dist.n_bins,
        "n_balls": dist.n_balls,
        "trials": dist.trials,
        "counts": dist.counts.tolist(),
        "max_load_per_trial": dist.max_load_per_trial.tolist(),
    }


def distribution_from_dict(data: dict) -> LoadDistribution:
    """Inverse of :func:`distribution_to_dict`."""
    if data.get("kind") != "LoadDistribution":
        raise ValueError(f"not a LoadDistribution payload: {data.get('kind')!r}")
    return LoadDistribution(
        n_bins=int(data["n_bins"]),
        n_balls=int(data["n_balls"]),
        trials=int(data["trials"]),
        counts=np.asarray(data["counts"], dtype=np.int64),
        max_load_per_trial=np.asarray(
            data["max_load_per_trial"], dtype=np.int64
        ),
    )


def queueing_result_to_dict(result: QueueingResult) -> dict:
    """Stable dict form of a queueing result."""
    return {
        "kind": "QueueingResult",
        "mean_sojourn_time": result.mean_sojourn_time,
        "completed_jobs": result.completed_jobs,
        "mean_queue_length": result.mean_queue_length,
        "sim_time": result.sim_time,
        "tail_fractions": (
            None
            if result.tail_fractions is None
            else result.tail_fractions.tolist()
        ),
        "n_arrivals": result.n_arrivals,
        "n_departures": result.n_departures,
        "busy_fraction": result.busy_fraction,
    }


def queueing_result_from_dict(data: dict) -> QueueingResult:
    """Inverse of :func:`queueing_result_to_dict`."""
    if data.get("kind") != "QueueingResult":
        raise ValueError(f"not a QueueingResult payload: {data.get('kind')!r}")
    tails = data.get("tail_fractions")
    arrivals = data.get("n_arrivals")
    departures = data.get("n_departures")
    busy = data.get("busy_fraction")
    return QueueingResult(
        mean_sojourn_time=float(data["mean_sojourn_time"]),
        completed_jobs=int(data["completed_jobs"]),
        mean_queue_length=float(data["mean_queue_length"]),
        sim_time=float(data["sim_time"]),
        tail_fractions=None if tails is None else np.asarray(tails),
        n_arrivals=None if arrivals is None else int(arrivals),
        n_departures=None if departures is None else int(departures),
        busy_fraction=None if busy is None else float(busy),
    )


def save_json(payload: Any, path: str | Path) -> None:
    """Write ``payload`` as pretty-printed, numpy-tolerant JSON."""
    Path(path).write_text(
        json.dumps(payload, cls=_NumpyEncoder, indent=2, sort_keys=True)
    )


def load_json(path: str | Path) -> Any:
    """Read a JSON payload written by :func:`save_json`."""
    return json.loads(Path(path).read_text())
