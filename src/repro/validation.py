"""Built-in self-validation: quick checks of every paper anchor.

``python -m repro validate`` runs this suite — a few seconds of
computation checking that the installed library reproduces the paper's
key numbers and qualitative claims at reduced scale.  It is the
"is this installation sane" entry point for downstream users,
complementing (not replacing) the pytest suite.

Every published number used here is looked up in the paper-anchor
registry (:mod:`repro.certify.anchors`); this module transcribes
nothing itself.  For the full tiered statistical certification —
machine-readable verdicts, Holm-corrected equivalence tests, every
table — use ``python -m repro certify`` (:mod:`repro.certify`), which
supersedes this quick suite without replacing its role as a smoke
check.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.certify.anchors import anchor_value

__all__ = ["Check", "run_validation", "VALIDATION_CHECKS"]


@dataclass(frozen=True)
class Check:
    """One validation check: a name, a thunk, and its claim."""

    name: str
    claim: str
    run: Callable[[], tuple[bool, str]]


def _check_fluid_table2() -> tuple[bool, str]:
    from repro.fluid import solve_balls_bins

    fl = solve_balls_bins(3, 1.0)
    got = (fl.tail_at(1), fl.tail_at(2), fl.tail_at(3))
    want = tuple(anchor_value(f"table2/fluid/tail{k}") for k in (1, 2, 3))
    ok = (
        abs(got[0] - want[0]) < 2e-4
        and abs(got[1] - want[1]) < 2e-4
        and abs(got[2] - want[2]) < 1e-5
    )
    return ok, f"tails = {got[0]:.4f}/{got[1]:.4f}/{got[2]:.5f}"


def _check_table8_equilibrium() -> tuple[bool, str]:
    from repro.fluid import equilibrium_mean_sojourn_time

    got = equilibrium_mean_sojourn_time(0.9, 3)
    want = anchor_value("table8/lam0.9/d3/random")
    return abs(got - want) < 2.5e-3, f"E[T](0.9, 3) = {got:.5f}"


def _check_indistinguishable() -> tuple[bool, str]:
    from repro.analysis import compare_distributions
    from repro.core import simulate_batch
    from repro.hashing import DoubleHashingChoices, FullyRandomChoices

    n = 2**12
    a = simulate_batch(FullyRandomChoices(n, 3), n, 40, seed=1).distribution()
    b = simulate_batch(DoubleHashingChoices(n, 3), n, 40, seed=2).distribution()
    report = compare_distributions(a, b)
    return (
        report.indistinguishable,
        f"chi-square p = {report.p_value:.3f}, "
        f"TV = {report.tv_distance:.5f}",
    )


def _check_majorization() -> tuple[bool, str]:
    from repro.analysis import coupled_majorization_run

    trace = coupled_majorization_run(256, 512, 4, seed=3)
    return trace.holds, (
        f"max_x = {trace.final_max_x}, max_y = {trace.final_max_y}"
    )


def _check_dleft_fluid() -> tuple[bool, str]:
    from repro.fluid import solve_dleft

    fl = solve_dleft(4, 1.0)
    got = fl.fraction_at(1)
    want = anchor_value("table7/n18/random/load1")
    return abs(got - want) < 1e-4, f"fraction(load 1) = {got:.5f}"


def _check_witness_bound() -> tuple[bool, str]:
    from repro.analysis import witness_tree_bound
    from repro.core import simulate_batch
    from repro.hashing import DoubleHashingChoices

    n = 2**12
    batch = simulate_batch(DoubleHashingChoices(n, 3), n, 10, seed=4)
    observed = int(batch.loads.max())
    bound = witness_tree_bound(n, 3).max_load_bound
    return observed <= bound, f"max load {observed} <= bound {bound}"


def _check_peeling_threshold() -> tuple[bool, str]:
    from repro.peeling import peeling_threshold

    got = peeling_threshold(3)
    want = anchor_value("derived/peeling-threshold/d3")
    return abs(got - want) < 1e-4, f"c*(3) = {got:.5f}"


def _check_queueing_sim() -> tuple[bool, str]:
    from repro.fluid import equilibrium_mean_sojourn_time
    from repro.hashing import DoubleHashingChoices
    from repro.queueing import simulate_supermarket

    result = simulate_supermarket(
        DoubleHashingChoices(256, 3), 0.9, 200.0, burn_in=40.0, seed=5
    )
    expected = equilibrium_mean_sojourn_time(0.9, 3)
    gap = abs(result.mean_sojourn_time - expected) / expected
    return gap < 0.1, (
        f"simulated {result.mean_sojourn_time:.4f} vs fluid {expected:.4f}"
    )


VALIDATION_CHECKS: tuple[Check, ...] = (
    Check(
        "fluid-table2",
        "d=3 fluid tails match paper Table 2 to printed precision",
        _check_fluid_table2,
    ),
    Check(
        "queueing-equilibrium",
        "supermarket equilibrium matches paper Table 8 at (0.9, 3)",
        _check_table8_equilibrium,
    ),
    Check(
        "indistinguishable",
        "double vs random load laws pass chi-square homogeneity",
        _check_indistinguishable,
    ),
    Check(
        "majorization",
        "Theorem 2 coupling invariant holds ball-by-ball",
        _check_majorization,
    ),
    Check(
        "dleft-fluid",
        "d-left fluid limit matches paper Table 7 at load 1",
        _check_dleft_fluid,
    ),
    Check(
        "witness-bound",
        "simulated max loads respect the Theorem 4 bound",
        _check_witness_bound,
    ),
    Check(
        "peeling-threshold",
        "density evolution reproduces the d=3 peeling threshold",
        _check_peeling_threshold,
    ),
    Check(
        "queueing-simulation",
        "event-driven queueing lands on the fluid equilibrium",
        _check_queueing_sim,
    ),
)


def run_validation(*, verbose: bool = True) -> bool:
    """Run every check; print a line per check when ``verbose``.

    Returns True when all checks pass.  For the tiered, machine-readable
    version of these checks see ``python -m repro certify``.
    """
    all_ok = True
    for check in VALIDATION_CHECKS:
        ok, detail = check.run()
        all_ok &= ok
        if verbose:
            status = "PASS" if ok else "FAIL"
            print(f"[{status}] {check.name}: {check.claim}")
            print(f"       {detail}")
    if verbose:
        print("all checks passed" if all_ok else "SOME CHECKS FAILED")
    return all_ok
