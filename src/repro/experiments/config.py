"""Experiment configuration: the unified spec and the paper's values.

Two things live here:

- :class:`ExperimentSpec` — the single, frozen description of an
  experiment run (geometry + trials + seed + workers + engine policy).
  ``run_experiment``, every ``table*`` function, and the CLI all consume
  one; ``TABLE_DEFAULTS`` holds the per-table default spec that both the
  programmatic defaults and the CLI subcommand defaults derive from, so
  the two paths cannot drift.
- ``PAPER_VALUES`` — every published number this reproduction targets,
  keyed by table, attached to outputs for side-by-side reporting.  Since
  the certification subsystem landed this is a *view* of the
  paper-anchor registry (:mod:`repro.certify.anchors`), which owns the
  one and only transcription of the paper's tables.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.certify.anchors import paper_values as _paper_values
from repro.errors import ConfigurationError
from repro.hashing.registry import make_scheme, scheme_names
from repro.kernels import DEFAULT_BLOCK, KNOWN_BACKENDS
from repro.parallel.engine import EngineConfig

__all__ = ["ExperimentScale", "ExperimentSpec", "PAPER_VALUES", "TABLE_DEFAULTS"]


@dataclass(frozen=True)
class ExperimentSpec:
    """Frozen description of one experiment run.

    The spec covers four concerns: geometry (``n``, ``d``, ``n_balls``,
    ``log2_n``, ``sim_time``/``burn_in`` for the queueing table),
    sampling (``trials``, ``seed``), execution (``workers``, ``chunks``,
    ``tie_break``, ``block``, ``backend``), and engine policy (``max_retries``,
    ``retry_backoff``, ``chunk_timeout``, ``checkpoint``,
    ``metrics_out``).  Derive variants with :meth:`replace`.

    Attributes
    ----------
    n:
        Number of bins (and balls, unless ``n_balls`` overrides).
    d:
        Choices per ball.
    n_balls:
        Balls thrown; ``None`` means ``n`` (heavy-load runs set ``m > n``).
    trials:
        Independent trials (paper scale: 10000).
    seed:
        Root seed; chunk streams are spawned deterministically from it.
        ``None`` draws fresh OS entropy (not reproducible).
    tie_break:
        ``"random"`` (standard) or ``"left"`` (Vöcking).
    block:
        Ball-steps per generation/kernel superblock inside the vectorized
        engine.  The default is the sweep-derived
        :data:`repro.kernels.DEFAULT_BLOCK` (see ``docs/performance.md``).
    backend:
        Kernel backend (``"numpy"``/``"numba"``); ``None`` defers to the
        ``REPRO_BACKEND`` environment variable, then auto-detection.
        Worker processes inherit the choice.
    scheme:
        Choice-scheme registry name (see
        :func:`repro.hashing.scheme_names`); ``None`` defers to the
        ``REPRO_SCHEME`` environment variable, then ``"double"``.
        Consumed by scheme-agnostic entry points (``compare``,
        ``serve``); the ``table*`` functions fix their own schemes per
        the paper.  Build the instance with :meth:`build_scheme`.
    workers:
        Process count; 1 runs in-process (still chunked).
    chunks:
        Chunk-count override (``None``: engine default).
    trials_mode:
        ``"chunked"`` (default) runs trials lock-step per chunk on one
        shared generator; ``"parallel"`` gives every trial an
        independent counter-based stream
        (:mod:`repro.kernels.parallel_trials`) so trials parallelize
        inside one numba ``prange`` kernel — falling back to the
        process-pool engine when numba is absent — with results
        independent of chunking, backend, and host (*seed-equivalence*).
    shards:
        Aggregation-shard count for ``trials_mode="parallel"``; ``None``
        sizes automatically (see
        :func:`repro.kernels.default_shards` and ``docs/scale.md``).
    max_retries, retry_backoff, chunk_timeout:
        Fault-tolerance policy, see
        :class:`~repro.parallel.engine.EngineConfig`.
    checkpoint:
        JSONL checkpoint path enabling resume of interrupted sweeps.
    metrics_out:
        Path for a metrics-snapshot JSON written after the run.
    log2_n:
        Table-size exponent for sweeps keyed by power of two (Table 3).
    sim_time, burn_in:
        Queueing-simulation horizon (Table 8); ``burn_in`` defaults to
        ``sim_time / 5`` when ``None``.
    """

    n: int = 2**12
    d: int = 3
    n_balls: int | None = None
    trials: int = 50
    seed: int | None = 1
    tie_break: str = "random"
    block: int = DEFAULT_BLOCK
    backend: str | None = None
    scheme: str | None = None
    workers: int = 1
    chunks: int | None = None
    trials_mode: str = "chunked"
    shards: int | None = None
    max_retries: int = 2
    retry_backoff: float = 0.25
    chunk_timeout: float | None = None
    checkpoint: str | None = None
    metrics_out: str | None = None
    log2_n: int = 14
    sim_time: float = 300.0
    burn_in: float | None = None

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"n must be positive, got {self.n}")
        if self.d < 1:
            raise ConfigurationError(f"d must be positive, got {self.d}")
        if self.n_balls is not None and self.n_balls < 1:
            raise ConfigurationError(
                f"n_balls must be positive, got {self.n_balls}"
            )
        if self.trials < 0:
            raise ConfigurationError(
                f"trials must be non-negative, got {self.trials}"
            )
        if self.tie_break not in ("random", "left"):
            raise ConfigurationError(
                f"tie_break must be 'random' or 'left', got {self.tie_break!r}"
            )
        if self.block < 1:
            raise ConfigurationError(f"block must be positive, got {self.block}")
        if self.backend is not None and self.backend not in KNOWN_BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {KNOWN_BACKENDS} or None, "
                f"got {self.backend!r}"
            )
        if self.scheme is not None and self.scheme not in scheme_names():
            raise ConfigurationError(
                f"scheme must be one of {scheme_names()} or None, "
                f"got {self.scheme!r}"
            )
        if self.workers < 0:
            raise ConfigurationError(
                f"workers must be non-negative, got {self.workers}"
            )
        if self.trials_mode not in ("chunked", "parallel"):
            raise ConfigurationError(
                "trials_mode must be 'chunked' or 'parallel', "
                f"got {self.trials_mode!r}"
            )
        if self.shards is not None and self.shards < 1:
            raise ConfigurationError(
                f"shards must be positive, got {self.shards}"
            )
        # Engine-policy fields share EngineConfig's validation.
        self.engine_config()

    @property
    def balls(self) -> int:
        """Balls thrown: ``n_balls`` when set, else ``n``."""
        return self.n_balls if self.n_balls is not None else self.n

    @property
    def effective_burn_in(self) -> float:
        """Queueing burn-in: ``burn_in`` when set, else ``sim_time / 5``."""
        return self.burn_in if self.burn_in is not None else self.sim_time / 5

    def replace(self, **changes) -> "ExperimentSpec":
        """A copy of this spec with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def build_scheme(self, *, rng=None, seed: int | None = None):
        """Instantiate the spec's choice scheme from the unified registry.

        Resolution is explicit > ``REPRO_SCHEME`` env > ``"double"``
        (see :func:`repro.hashing.resolve_scheme_name`); geometry comes
        from ``self.n`` / ``self.d``.
        """
        return make_scheme(self.scheme, self.n, self.d, rng=rng, seed=seed)

    def engine_config(self) -> EngineConfig:
        """The execution-engine policy encoded by this spec."""
        return EngineConfig(
            workers=self.workers,
            chunks=self.chunks,
            max_retries=self.max_retries,
            retry_backoff=self.retry_backoff,
            chunk_timeout=self.chunk_timeout,
            checkpoint_path=self.checkpoint,
        )


# Per-table default specs.  These are the single source of truth for both
# the ``table*`` function defaults and the CLI subcommand defaults; the
# seeds and scales mirror the historical per-function defaults.
TABLE_DEFAULTS: dict[str, ExperimentSpec] = {
    "table1": ExperimentSpec(n=2**14, d=3, trials=100, seed=1),
    "table2": ExperimentSpec(n=2**14, d=3, trials=100, seed=2),
    "table3": ExperimentSpec(n=2**16, d=3, log2_n=16, trials=50, seed=3),
    "table4": ExperimentSpec(d=3, trials=200, seed=4),
    "table5": ExperimentSpec(n=2**18, d=4, trials=30, seed=5),
    "table6": ExperimentSpec(n=2**14, d=3, trials=50, seed=6),
    "table7": ExperimentSpec(n=2**14, d=4, trials=100, seed=7),
    "table8": ExperimentSpec(n=2**10, d=3, seed=8, sim_time=1000.0, burn_in=100.0),
}


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs shared by the experiment functions.

    .. deprecated::
        Superseded by :class:`ExperimentSpec`, which additionally carries
        geometry and engine policy; retained for existing callers.

    Attributes
    ----------
    trials:
        Trials per configuration (paper: 10000).
    seed:
        Root seed for reproducibility.
    workers:
        Process count for trial fan-out.
    """

    trials: int = 100
    seed: int = 20140623  # SPAA 2014 start date
    workers: int = 1


# Published numbers, in the historical nested-dict shape.  The actual
# transcription lives in the paper-anchor registry
# (repro.certify.anchors) — the single place paper values are typed in;
# this view is rebuilt from it so existing consumers keep working.
PAPER_VALUES: dict[str, dict] = _paper_values()
