"""Experiment configuration: the unified spec and the paper's values.

Two things live here:

- :class:`ExperimentSpec` — the single, frozen description of an
  experiment run (geometry + trials + seed + workers + engine policy).
  ``run_experiment``, every ``table*`` function, and the CLI all consume
  one; ``TABLE_DEFAULTS`` holds the per-table default spec that both the
  programmatic defaults and the CLI subcommand defaults derive from, so
  the two paths cannot drift.
- ``PAPER_VALUES`` — every published number this reproduction targets,
  keyed by table, attached to outputs for side-by-side reporting.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.kernels import DEFAULT_BLOCK, KNOWN_BACKENDS
from repro.parallel.engine import EngineConfig

__all__ = ["ExperimentScale", "ExperimentSpec", "PAPER_VALUES", "TABLE_DEFAULTS"]


@dataclass(frozen=True)
class ExperimentSpec:
    """Frozen description of one experiment run.

    The spec covers four concerns: geometry (``n``, ``d``, ``n_balls``,
    ``log2_n``, ``sim_time``/``burn_in`` for the queueing table),
    sampling (``trials``, ``seed``), execution (``workers``, ``chunks``,
    ``tie_break``, ``block``, ``backend``), and engine policy (``max_retries``,
    ``retry_backoff``, ``chunk_timeout``, ``checkpoint``,
    ``metrics_out``).  Derive variants with :meth:`replace`.

    Attributes
    ----------
    n:
        Number of bins (and balls, unless ``n_balls`` overrides).
    d:
        Choices per ball.
    n_balls:
        Balls thrown; ``None`` means ``n`` (heavy-load runs set ``m > n``).
    trials:
        Independent trials (paper scale: 10000).
    seed:
        Root seed; chunk streams are spawned deterministically from it.
        ``None`` draws fresh OS entropy (not reproducible).
    tie_break:
        ``"random"`` (standard) or ``"left"`` (Vöcking).
    block:
        Ball-steps per generation/kernel superblock inside the vectorized
        engine.  The default is the sweep-derived
        :data:`repro.kernels.DEFAULT_BLOCK` (see ``docs/performance.md``).
    backend:
        Kernel backend (``"numpy"``/``"numba"``); ``None`` defers to the
        ``REPRO_BACKEND`` environment variable, then auto-detection.
        Worker processes inherit the choice.
    workers:
        Process count; 1 runs in-process (still chunked).
    chunks:
        Chunk-count override (``None``: engine default).
    max_retries, retry_backoff, chunk_timeout:
        Fault-tolerance policy, see
        :class:`~repro.parallel.engine.EngineConfig`.
    checkpoint:
        JSONL checkpoint path enabling resume of interrupted sweeps.
    metrics_out:
        Path for a metrics-snapshot JSON written after the run.
    log2_n:
        Table-size exponent for sweeps keyed by power of two (Table 3).
    sim_time, burn_in:
        Queueing-simulation horizon (Table 8); ``burn_in`` defaults to
        ``sim_time / 5`` when ``None``.
    """

    n: int = 2**12
    d: int = 3
    n_balls: int | None = None
    trials: int = 50
    seed: int | None = 1
    tie_break: str = "random"
    block: int = DEFAULT_BLOCK
    backend: str | None = None
    workers: int = 1
    chunks: int | None = None
    max_retries: int = 2
    retry_backoff: float = 0.25
    chunk_timeout: float | None = None
    checkpoint: str | None = None
    metrics_out: str | None = None
    log2_n: int = 14
    sim_time: float = 300.0
    burn_in: float | None = None

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"n must be positive, got {self.n}")
        if self.d < 1:
            raise ConfigurationError(f"d must be positive, got {self.d}")
        if self.n_balls is not None and self.n_balls < 1:
            raise ConfigurationError(
                f"n_balls must be positive, got {self.n_balls}"
            )
        if self.trials < 0:
            raise ConfigurationError(
                f"trials must be non-negative, got {self.trials}"
            )
        if self.tie_break not in ("random", "left"):
            raise ConfigurationError(
                f"tie_break must be 'random' or 'left', got {self.tie_break!r}"
            )
        if self.block < 1:
            raise ConfigurationError(f"block must be positive, got {self.block}")
        if self.backend is not None and self.backend not in KNOWN_BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {KNOWN_BACKENDS} or None, "
                f"got {self.backend!r}"
            )
        if self.workers < 0:
            raise ConfigurationError(
                f"workers must be non-negative, got {self.workers}"
            )
        # Engine-policy fields share EngineConfig's validation.
        self.engine_config()

    @property
    def balls(self) -> int:
        """Balls thrown: ``n_balls`` when set, else ``n``."""
        return self.n_balls if self.n_balls is not None else self.n

    @property
    def effective_burn_in(self) -> float:
        """Queueing burn-in: ``burn_in`` when set, else ``sim_time / 5``."""
        return self.burn_in if self.burn_in is not None else self.sim_time / 5

    def replace(self, **changes) -> "ExperimentSpec":
        """A copy of this spec with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def engine_config(self) -> EngineConfig:
        """The execution-engine policy encoded by this spec."""
        return EngineConfig(
            workers=self.workers,
            chunks=self.chunks,
            max_retries=self.max_retries,
            retry_backoff=self.retry_backoff,
            chunk_timeout=self.chunk_timeout,
            checkpoint_path=self.checkpoint,
        )


# Per-table default specs.  These are the single source of truth for both
# the ``table*`` function defaults and the CLI subcommand defaults; the
# seeds and scales mirror the historical per-function defaults.
TABLE_DEFAULTS: dict[str, ExperimentSpec] = {
    "table1": ExperimentSpec(n=2**14, d=3, trials=100, seed=1),
    "table2": ExperimentSpec(n=2**14, d=3, trials=100, seed=2),
    "table3": ExperimentSpec(n=2**16, d=3, log2_n=16, trials=50, seed=3),
    "table4": ExperimentSpec(d=3, trials=200, seed=4),
    "table5": ExperimentSpec(n=2**18, d=4, trials=30, seed=5),
    "table6": ExperimentSpec(n=2**14, d=3, trials=50, seed=6),
    "table7": ExperimentSpec(n=2**14, d=4, trials=100, seed=7),
    "table8": ExperimentSpec(n=2**10, d=3, seed=8, sim_time=1000.0, burn_in=100.0),
}


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs shared by the experiment functions.

    .. deprecated::
        Superseded by :class:`ExperimentSpec`, which additionally carries
        geometry and engine policy; retained for existing callers.

    Attributes
    ----------
    trials:
        Trials per configuration (paper: 10000).
    seed:
        Root seed for reproducibility.
    workers:
        Process count for trial fan-out.
    """

    trials: int = 100
    seed: int = 20140623  # SPAA 2014 start date
    workers: int = 1


# Published numbers, transcribed from the paper (arXiv:1209.5360v4).
PAPER_VALUES: dict[str, dict] = {
    # Table 1: fraction of bins with each load, n = 2^14 balls and bins.
    "table1": {
        (3, "random"): {0: 0.17693, 1: 0.64664, 2: 0.17592, 3: 0.00051},
        (3, "double"): {0: 0.17691, 1: 0.64670, 2: 0.17589, 3: 0.00051},
        (4, "random"): {0: 0.14081, 1: 0.71840, 2: 0.14077, 3: 2.25e-5},
        (4, "double"): {0: 0.14081, 1: 0.71841, 2: 0.14076, 3: 2.29e-5},
    },
    # Table 2: tail fractions, 3 choices, fluid limit vs n = 2^14.
    "table2": {
        "fluid": {1: 0.8231, 2: 0.1765, 3: 0.00051},
        "random": {1: 0.8231, 2: 0.1764, 3: 0.00051},
        "double": {1: 0.8231, 2: 0.1764, 3: 0.00051},
    },
    # Table 3: load fractions at n = 2^16 and 2^18.
    "table3": {
        (16, 3, "random"): {0: 0.17695, 1: 0.64661, 2: 0.17593, 3: 0.00051},
        (16, 3, "double"): {0: 0.17693, 1: 0.64664, 2: 0.17592, 3: 0.00051},
        (16, 4, "random"): {0: 0.14081, 1: 0.71841, 2: 0.14076, 3: 2.32e-5},
        (16, 4, "double"): {0: 0.14083, 1: 0.71835, 2: 0.14079, 3: 2.30e-5},
        (18, 3, "random"): {0: 0.17696, 1: 0.64658, 2: 0.17595, 3: 0.00051},
        (18, 3, "double"): {0: 0.17696, 1: 0.64648, 2: 0.17595, 3: 0.00051},
        (18, 4, "random"): {0: 0.14083, 1: 0.71837, 2: 0.14078, 3: 2.31e-5},
        (18, 4, "double"): {0: 0.14082, 1: 0.71838, 2: 0.14078, 3: 2.32e-5},
    },
    # Table 4: percentage of trials with maximum load 3.
    "table4": {
        (3, "random"): {10: 39.78, 11: 64.71, 12: 86.90, 13: 98.37, 14: 100.0, 15: 100.0},
        (3, "double"): {10: 39.40, 11: 65.15, 12: 87.05, 13: 98.63, 14: 99.99, 15: 100.0},
        (4, "random"): {10: 2.24, 12: 8.91, 14: 30.75, 16: 78.23, 18: 99.77, 20: 100.0},
        (4, "double"): {10: 2.23, 12: 8.52, 14: 31.42, 16: 77.72, 18: 99.79, 20: 100.0},
    },
    # Table 5: per-load count statistics, 4 choices, 2^18 balls and bins.
    "table5": {
        "random": {
            0: {"min": 36522, "avg": 36913.75, "max": 37308, "std": 111.06},
            1: {"min": 187533, "avg": 188322.55, "max": 189103, "std": 222.02},
            2: {"min": 36516, "avg": 36901.67, "max": 37298, "std": 110.96},
            3: {"min": 1, "avg": 6.04, "max": 17, "std": 2.42},
        },
        "double": {
            0: {"min": 36535, "avg": 36916.57, "max": 37301, "std": 109.89},
            1: {"min": 187544, "avg": 188316.93, "max": 189078, "std": 219.71},
            2: {"min": 36524, "avg": 36904.45, "max": 37297, "std": 109.85},
            3: {"min": 1, "avg": 6.06, "max": 18, "std": 2.44},
        },
    },
    # Table 6: 2^18 balls into 2^14 bins (average load 16).
    "table6": {
        (3, "random"): {
            13: 0.00076, 14: 0.01254, 15: 0.16885, 16: 0.62220,
            17: 0.19482, 18: 0.00079,
        },
        (3, "double"): {
            13: 0.00076, 14: 0.01254, 15: 0.16877, 16: 0.62234,
            17: 0.19475, 18: 0.00079,
        },
        (4, "random"): {
            14: 0.00349, 15: 0.13908, 16: 0.71110, 17: 0.14622, 18: 2.86e-5,
        },
        (4, "double"): {
            14: 0.00349, 15: 0.13906, 16: 0.71114, 17: 0.14620, 18: 2.85e-5,
        },
    },
    # Table 7: Vöcking's d-left scheme, 4 choices.
    "table7": {
        (14, "random"): {0: 0.12420, 1: 0.75160, 2: 0.12420},
        (14, "double"): {0: 0.12421, 1: 0.75158, 2: 0.12421},
        (18, "random"): {0: 0.12421, 1: 0.75159, 2: 0.12421},
        (18, "double"): {0: 0.12421, 1: 0.75158, 2: 0.12421},
    },
    # Table 8: queueing, n = 2^14 queues, average time in system.
    "table8": {
        (0.9, 3, "random"): 2.02805,
        (0.9, 3, "double"): 2.02813,
        (0.9, 4, "random"): 1.77788,
        (0.9, 4, "double"): 1.77792,
        (0.99, 3, "random"): 3.85967,
        (0.99, 3, "double"): 3.86073,
        (0.99, 4, "random"): 3.24347,
        (0.99, 4, "double"): 3.24410,
    },
}
