"""Experiment scales and the paper's published values.

``PAPER_VALUES`` transcribes every number this reproduction targets, keyed
by table.  The experiment functions attach the relevant slice to their
output so reports and EXPERIMENTS.md can show paper-vs-measured side by
side; the test suite asserts agreement where sampling noise permits.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ExperimentScale", "PAPER_VALUES"]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs shared by the experiment functions.

    Attributes
    ----------
    trials:
        Trials per configuration (paper: 10000).
    seed:
        Root seed for reproducibility.
    workers:
        Process count for trial fan-out.
    """

    trials: int = 100
    seed: int = 20140623  # SPAA 2014 start date
    workers: int = 1


# Published numbers, transcribed from the paper (arXiv:1209.5360v4).
PAPER_VALUES: dict[str, dict] = {
    # Table 1: fraction of bins with each load, n = 2^14 balls and bins.
    "table1": {
        (3, "random"): {0: 0.17693, 1: 0.64664, 2: 0.17592, 3: 0.00051},
        (3, "double"): {0: 0.17691, 1: 0.64670, 2: 0.17589, 3: 0.00051},
        (4, "random"): {0: 0.14081, 1: 0.71840, 2: 0.14077, 3: 2.25e-5},
        (4, "double"): {0: 0.14081, 1: 0.71841, 2: 0.14076, 3: 2.29e-5},
    },
    # Table 2: tail fractions, 3 choices, fluid limit vs n = 2^14.
    "table2": {
        "fluid": {1: 0.8231, 2: 0.1765, 3: 0.00051},
        "random": {1: 0.8231, 2: 0.1764, 3: 0.00051},
        "double": {1: 0.8231, 2: 0.1764, 3: 0.00051},
    },
    # Table 3: load fractions at n = 2^16 and 2^18.
    "table3": {
        (16, 3, "random"): {0: 0.17695, 1: 0.64661, 2: 0.17593, 3: 0.00051},
        (16, 3, "double"): {0: 0.17693, 1: 0.64664, 2: 0.17592, 3: 0.00051},
        (16, 4, "random"): {0: 0.14081, 1: 0.71841, 2: 0.14076, 3: 2.32e-5},
        (16, 4, "double"): {0: 0.14083, 1: 0.71835, 2: 0.14079, 3: 2.30e-5},
        (18, 3, "random"): {0: 0.17696, 1: 0.64658, 2: 0.17595, 3: 0.00051},
        (18, 3, "double"): {0: 0.17696, 1: 0.64648, 2: 0.17595, 3: 0.00051},
        (18, 4, "random"): {0: 0.14083, 1: 0.71837, 2: 0.14078, 3: 2.31e-5},
        (18, 4, "double"): {0: 0.14082, 1: 0.71838, 2: 0.14078, 3: 2.32e-5},
    },
    # Table 4: percentage of trials with maximum load 3.
    "table4": {
        (3, "random"): {10: 39.78, 11: 64.71, 12: 86.90, 13: 98.37, 14: 100.0, 15: 100.0},
        (3, "double"): {10: 39.40, 11: 65.15, 12: 87.05, 13: 98.63, 14: 99.99, 15: 100.0},
        (4, "random"): {10: 2.24, 12: 8.91, 14: 30.75, 16: 78.23, 18: 99.77, 20: 100.0},
        (4, "double"): {10: 2.23, 12: 8.52, 14: 31.42, 16: 77.72, 18: 99.79, 20: 100.0},
    },
    # Table 5: per-load count statistics, 4 choices, 2^18 balls and bins.
    "table5": {
        "random": {
            0: {"min": 36522, "avg": 36913.75, "max": 37308, "std": 111.06},
            1: {"min": 187533, "avg": 188322.55, "max": 189103, "std": 222.02},
            2: {"min": 36516, "avg": 36901.67, "max": 37298, "std": 110.96},
            3: {"min": 1, "avg": 6.04, "max": 17, "std": 2.42},
        },
        "double": {
            0: {"min": 36535, "avg": 36916.57, "max": 37301, "std": 109.89},
            1: {"min": 187544, "avg": 188316.93, "max": 189078, "std": 219.71},
            2: {"min": 36524, "avg": 36904.45, "max": 37297, "std": 109.85},
            3: {"min": 1, "avg": 6.06, "max": 18, "std": 2.44},
        },
    },
    # Table 6: 2^18 balls into 2^14 bins (average load 16).
    "table6": {
        (3, "random"): {
            13: 0.00076, 14: 0.01254, 15: 0.16885, 16: 0.62220,
            17: 0.19482, 18: 0.00079,
        },
        (3, "double"): {
            13: 0.00076, 14: 0.01254, 15: 0.16877, 16: 0.62234,
            17: 0.19475, 18: 0.00079,
        },
        (4, "random"): {
            14: 0.00349, 15: 0.13908, 16: 0.71110, 17: 0.14622, 18: 2.86e-5,
        },
        (4, "double"): {
            14: 0.00349, 15: 0.13906, 16: 0.71114, 17: 0.14620, 18: 2.85e-5,
        },
    },
    # Table 7: Vöcking's d-left scheme, 4 choices.
    "table7": {
        (14, "random"): {0: 0.12420, 1: 0.75160, 2: 0.12420},
        (14, "double"): {0: 0.12421, 1: 0.75158, 2: 0.12421},
        (18, "random"): {0: 0.12421, 1: 0.75159, 2: 0.12421},
        (18, "double"): {0: 0.12421, 1: 0.75158, 2: 0.12421},
    },
    # Table 8: queueing, n = 2^14 queues, average time in system.
    "table8": {
        (0.9, 3, "random"): 2.02805,
        (0.9, 3, "double"): 2.02813,
        (0.9, 4, "random"): 1.77788,
        (0.9, 4, "double"): 1.77792,
        (0.99, 3, "random"): 3.85967,
        (0.99, 3, "double"): 3.86073,
        (0.99, 4, "random"): 3.24347,
        (0.99, 4, "double"): 3.24410,
    },
}
