"""Experiments beyond the paper's tables — probing its open questions.

The conclusion notes that "fluid limits do not straightforwardly apply for
the heavily loaded case where the number of balls is superlinear in the
number of bins [5], and it is unclear how double hashing performs in that
setting."  :func:`gap_experiment` probes that question empirically: for
``m = c·n`` with growing ``c``, Berenbrink et al. proved the **gap**
``max load − m/n`` stays ``log log n / log d + O(1)`` *independent of m*
under full randomness; we measure the gap under both schemes.

:func:`scheme_zoo_experiment` lines up every choice scheme in the library
(one-choice, (1+β), KP blocks, double hashing, fully random, d-left) on one
geometry — the summary picture of what reduced randomness does and does
not change.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import (
    simulate_batch,
    simulate_dleft,
    simulate_one_choice,
    simulate_one_plus_beta,
)
from repro.core.dleft import make_dleft_scheme
from repro.errors import ConfigurationError
from repro.hashing import (
    BlockChoices,
    DoubleHashingChoices,
    FullyRandomChoices,
)

__all__ = ["GapExperiment", "gap_experiment", "scheme_zoo_experiment"]


@dataclass(frozen=True)
class GapExperiment:
    """Gap (max load − mean load) vs. total balls, per scheme.

    Attributes
    ----------
    balls_per_bin:
        The swept ``c = m/n`` values.
    gap_random, gap_double:
        Mean over trials of ``max load − m/n`` at each ``c``.
    """

    n_bins: int
    d: int
    balls_per_bin: tuple[int, ...]
    gap_random: np.ndarray
    gap_double: np.ndarray


def gap_experiment(
    n_bins: int,
    d: int,
    balls_per_bin: tuple[int, ...] = (1, 4, 16, 64),
    trials: int = 20,
    *,
    seed: int = 0,
) -> GapExperiment:
    """Measure the heavily-loaded gap for both schemes.

    The open-question probe: if double hashing behaved differently in the
    superlinear regime, its gap would grow with ``c`` while the fully
    random gap stays flat (Berenbrink et al.).
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if not balls_per_bin:
        raise ConfigurationError("balls_per_bin must be non-empty")
    gaps = {"random": [], "double": []}
    for k, c in enumerate(balls_per_bin):
        m = n_bins * c
        for name, scheme in (
            ("random", FullyRandomChoices(n_bins, d)),
            ("double", DoubleHashingChoices(n_bins, d)),
        ):
            batch = simulate_batch(
                scheme, m, trials, seed=seed + 17 * k + (name == "double")
            )
            gap = batch.loads.max(axis=1) - m / n_bins
            gaps[name].append(float(gap.mean()))
    return GapExperiment(
        n_bins=n_bins,
        d=d,
        balls_per_bin=tuple(balls_per_bin),
        gap_random=np.array(gaps["random"]),
        gap_double=np.array(gaps["double"]),
    )


def scheme_zoo_experiment(
    n_bins: int,
    trials: int = 30,
    *,
    d: int = 4,
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Every scheme in the library on one geometry; summary per scheme.

    Returns ``{scheme_name: {"empty": frac load 0, "tail2": frac load >= 2,
    "max_load": mean max load}}`` — the single-table overview used by the
    README and the zoo example.
    """
    if d % 2 != 0 or d < 2:
        raise ConfigurationError(f"the zoo needs even d >= 2, got {d}")
    if n_bins % d != 0:
        raise ConfigurationError(f"the zoo needs d | n_bins, got {n_bins}/{d}")
    results: dict[str, dict[str, float]] = {}

    def summarize(batch) -> dict[str, float]:
        dist = batch.distribution()
        return {
            "empty": dist.fraction_at(0),
            "tail2": dist.tail_at(2),
            "max_load": float(batch.loads.max(axis=1).mean()),
        }

    results["one-choice"] = summarize(
        simulate_one_choice(n_bins, n_bins, trials, seed=seed)
    )
    results["one-plus-beta(0.5)"] = summarize(
        simulate_one_plus_beta(n_bins, n_bins, trials, beta=0.5, seed=seed + 1)
    )
    results["kp-blocks"] = summarize(
        simulate_batch(BlockChoices(n_bins, d), n_bins, trials, seed=seed + 2)
    )
    results["fully-random"] = summarize(
        simulate_batch(
            FullyRandomChoices(n_bins, d), n_bins, trials, seed=seed + 3
        )
    )
    results["double-hashing"] = summarize(
        simulate_batch(
            DoubleHashingChoices(n_bins, d), n_bins, trials, seed=seed + 4
        )
    )
    results["d-left-double"] = summarize(
        simulate_dleft(
            make_dleft_scheme(n_bins, d, "double"), n_bins, trials,
            seed=seed + 5,
        )
    )
    return results
