"""One function per table in the paper's evaluation.

Every function runs both schemes (fully random and double hashing) at a
configurable scale and returns an :class:`ExperimentTable` whose rows mirror
the paper's layout, with the published values attached for side-by-side
reporting.

Each function takes an :class:`~repro.experiments.config.ExperimentSpec`
(defaults come from ``TABLE_DEFAULTS``, the same source the CLI uses)::

    table = table1_load_fractions(ExperimentSpec(n=2**14, trials=1000, seed=1))

The historical keyword style — ``table1_load_fractions(3, n=..., trials=...)``
— still works but emits a :class:`DeprecationWarning`.  Table-shape extras
(``log2_n_values``, ``balls_per_bin``, ``lambdas``, ``d_values``) remain
ordinary keyword arguments and compose with a spec.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.core import run_experiment, simulate_dleft
from repro.core.dleft import make_dleft_scheme
from repro.experiments.config import PAPER_VALUES, TABLE_DEFAULTS, ExperimentSpec
from repro.fluid import (
    equilibrium_mean_sojourn_time,
    solve_balls_bins,
    solve_dleft,
    solve_heavy_load,
)
from repro.hashing import DoubleHashingChoices, FullyRandomChoices
from repro.metrics import MetricsRegistry
from repro.parallel.engine import ChunkProgress
from repro.queueing import simulate_supermarket

__all__ = [
    "ExperimentTable",
    "table1_load_fractions",
    "table2_fluid_vs_simulation",
    "table3_larger_n",
    "table4_max_load",
    "table5_level_stats",
    "table6_heavy_load",
    "table7_dleft",
    "table8_queueing",
]

ProgressHook = Callable[[ChunkProgress], None]


@dataclass
class ExperimentTable:
    """A reproduced table: header, measured rows, and paper reference.

    Attributes
    ----------
    table_id:
        Paper table identifier, e.g. ``"Table 1(a)"``.
    title:
        Caption-style description.
    columns:
        Column names, first column is the row key (e.g. load level).
    rows:
        List of row tuples aligned with ``columns``.
    paper:
        The published values relevant to this run (shape varies by table).
    meta:
        Run parameters (n, d, trials, …) for the report header.
    """

    table_id: str
    title: str
    columns: list[str]
    rows: list[tuple]
    paper: Any
    meta: dict = field(default_factory=dict)


def _spec_for(
    table: str,
    spec: "ExperimentSpec | int | None",
    **legacy,
) -> ExperimentSpec:
    """Resolve (spec | legacy keywords) against the table's default spec.

    ``spec`` may be an :class:`ExperimentSpec` (preferred), ``None`` (use
    ``TABLE_DEFAULTS[table]`` merged with any legacy keywords), or — for
    the functions whose first positional argument used to be ``d`` — a
    bare integer, read as that legacy ``d``.
    """
    base = TABLE_DEFAULTS[table]
    if isinstance(spec, ExperimentSpec):
        if any(v is not None for v in legacy.values()):
            raise TypeError(
                f"{table}: pass either an ExperimentSpec or legacy keyword "
                "arguments, not both"
            )
        return spec
    if isinstance(spec, int):
        legacy["d"] = spec
    overrides = {k: v for k, v in legacy.items() if v is not None}
    if overrides:
        warnings.warn(
            f"{table}: keyword-style arguments {sorted(overrides)} are "
            "deprecated; pass an ExperimentSpec instead",
            DeprecationWarning,
            stacklevel=3,
        )
    return base.replace(**overrides) if overrides else base


def _subrun(
    spec: ExperimentSpec, label: str, seed_offset: int = 0
) -> ExperimentSpec:
    """Derive the spec for one scheme's sub-run within a table.

    Offsets the seed (the historical per-scheme convention) and suffixes
    the checkpoint path so concurrent sub-runs never collide on one file.
    Metrics output stays owned by the table-level caller.
    """
    changes: dict[str, Any] = {"metrics_out": None}
    if spec.seed is not None:
        changes["seed"] = spec.seed + seed_offset
    if spec.checkpoint:
        p = Path(spec.checkpoint)
        changes["checkpoint"] = str(p.with_name(f"{p.stem}.{label}{p.suffix}"))
    return spec.replace(**changes)


def table1_load_fractions(
    spec: "ExperimentSpec | int | None" = None,
    *,
    metrics: MetricsRegistry | None = None,
    progress: ProgressHook | None = None,
    d: int | None = None,
    n: int | None = None,
    trials: int | None = None,
    seed: int | None = None,
    workers: int | None = None,
) -> ExperimentTable:
    """Table 1: load fractions, random vs double, n balls into n bins."""
    spec = _spec_for(
        "table1", spec, d=d, n=n, trials=trials, seed=seed, workers=workers
    )
    random_res = run_experiment(
        FullyRandomChoices(spec.n, spec.d),
        _subrun(spec, "random"),
        metrics=metrics,
        progress=progress,
    )
    double_res = run_experiment(
        DoubleHashingChoices(spec.n, spec.d),
        _subrun(spec, "double", seed_offset=1),
        metrics=metrics,
        progress=progress,
    )
    fr = random_res.distribution.fractions
    fd = double_res.distribution.fractions
    width = max(len(fr), len(fd))
    rows = [
        (
            load,
            float(fr[load]) if load < len(fr) else 0.0,
            float(fd[load]) if load < len(fd) else 0.0,
        )
        for load in range(width)
    ]
    sub = "a" if spec.d == 3 else "b"
    return ExperimentTable(
        table_id=f"Table 1({sub})",
        title=f"{spec.d} choices, n = {spec.n} balls and bins",
        columns=["Load", "Fully Random", "Double Hashing"],
        rows=rows,
        paper={
            "random": PAPER_VALUES["table1"].get((spec.d, "random"), {}),
            "double": PAPER_VALUES["table1"].get((spec.d, "double"), {}),
        },
        meta={"n": spec.n, "d": spec.d, "trials": spec.trials},
    )


def table2_fluid_vs_simulation(
    spec: "ExperimentSpec | None" = None,
    *,
    metrics: MetricsRegistry | None = None,
    progress: ProgressHook | None = None,
    n: int | None = None,
    d: int | None = None,
    trials: int | None = None,
    seed: int | None = None,
    workers: int | None = None,
) -> ExperimentTable:
    """Table 2: fluid-limit tail fractions vs both simulated schemes."""
    spec = _spec_for(
        "table2", spec, n=n, d=d, trials=trials, seed=seed, workers=workers
    )
    fluid = solve_balls_bins(spec.d, 1.0)
    random_res = run_experiment(
        FullyRandomChoices(spec.n, spec.d),
        _subrun(spec, "random"),
        metrics=metrics,
        progress=progress,
    )
    double_res = run_experiment(
        DoubleHashingChoices(spec.n, spec.d),
        _subrun(spec, "double", seed_offset=1),
        metrics=metrics,
        progress=progress,
    )
    max_tail = max(
        len(random_res.distribution.counts), len(double_res.distribution.counts)
    )
    rows = [
        (
            load,
            fluid.tail_at(load),
            random_res.distribution.tail_at(load),
            double_res.distribution.tail_at(load),
        )
        for load in range(1, max_tail)
    ]
    return ExperimentTable(
        table_id="Table 2",
        title=f"{spec.d} choices, fluid limit (n = inf) vs n = {spec.n} "
        "balls and bins",
        columns=["Tail load >=", "Fluid Limit", "Fully Random", "Double Hashing"],
        rows=rows,
        paper=PAPER_VALUES["table2"],
        meta={"n": spec.n, "d": spec.d, "trials": spec.trials},
    )


def table3_larger_n(
    spec: "ExperimentSpec | int | None" = None,
    *,
    metrics: MetricsRegistry | None = None,
    progress: ProgressHook | None = None,
    d: int | None = None,
    log2_n: int | None = None,
    trials: int | None = None,
    seed: int | None = None,
    workers: int | None = None,
) -> ExperimentTable:
    """Table 3: load fractions at larger table sizes (2^16, 2^18)."""
    spec = _spec_for(
        "table3", spec, d=d, log2_n=log2_n, trials=trials, seed=seed,
        workers=workers,
    )
    spec = spec.replace(n=2**spec.log2_n)
    table = table1_load_fractions(spec, metrics=metrics, progress=progress)
    table.table_id = f"Table 3 (n = 2^{spec.log2_n}, d = {spec.d})"
    table.paper = {
        "random": PAPER_VALUES["table3"].get((spec.log2_n, spec.d, "random"), {}),
        "double": PAPER_VALUES["table3"].get((spec.log2_n, spec.d, "double"), {}),
    }
    return table


def table4_max_load(
    spec: "ExperimentSpec | int | None" = None,
    *,
    log2_n_values: tuple[int, ...] = (10, 11, 12, 13, 14),
    metrics: MetricsRegistry | None = None,
    progress: ProgressHook | None = None,
    d: int | None = None,
    trials: int | None = None,
    seed: int | None = None,
    workers: int | None = None,
) -> ExperimentTable:
    """Table 4: percentage of trials whose maximum load is exactly 3."""
    spec = _spec_for(
        "table4", spec, d=d, trials=trials, seed=seed, workers=workers
    )
    rows = []
    for k, log2_n in enumerate(log2_n_values):
        n = 2**log2_n
        point = spec.replace(n=n)
        random_res = run_experiment(
            FullyRandomChoices(n, spec.d),
            _subrun(point, f"random-{log2_n}", seed_offset=2 * k),
            metrics=metrics,
            progress=progress,
        )
        double_res = run_experiment(
            DoubleHashingChoices(n, spec.d),
            _subrun(point, f"double-{log2_n}", seed_offset=2 * k + 1),
            metrics=metrics,
            progress=progress,
        )
        rows.append(
            (
                f"2^{log2_n}",
                100.0 * random_res.distribution.fraction_trials_max_load(3),
                100.0 * double_res.distribution.fraction_trials_max_load(3),
            )
        )
    return ExperimentTable(
        table_id=f"Table 4 ({spec.d} choices)",
        title=f"Percentage of trials with maximum load 3, {spec.d} choices",
        columns=["n", "Fully Random", "Double Hashing"],
        rows=rows,
        paper={
            "random": PAPER_VALUES["table4"].get((spec.d, "random"), {}),
            "double": PAPER_VALUES["table4"].get((spec.d, "double"), {}),
        },
        meta={"d": spec.d, "trials": spec.trials},
    )


def table5_level_stats(
    spec: "ExperimentSpec | None" = None,
    *,
    metrics: MetricsRegistry | None = None,
    progress: ProgressHook | None = None,
    n: int | None = None,
    d: int | None = None,
    trials: int | None = None,
    seed: int | None = None,
    workers: int | None = None,
) -> ExperimentTable:
    """Table 5: per-load min/avg/max/std of bin counts across trials."""
    spec = _spec_for(
        "table5", spec, n=n, d=d, trials=trials, seed=seed, workers=workers
    )
    rows: list[tuple] = []
    paper = PAPER_VALUES["table5"]
    for label, scheme, offset in (
        ("random", FullyRandomChoices(spec.n, spec.d), 0),
        ("double", DoubleHashingChoices(spec.n, spec.d), 1),
    ):
        res = run_experiment(
            scheme,
            _subrun(spec, label, seed_offset=offset),
            metrics=metrics,
            progress=progress,
        )
        top = len(res.distribution.counts) - 1
        for load in range(top + 1):
            st = res.aggregator.level_stats(load)
            rows.append(
                (label, load, st.minimum, st.mean, st.maximum, st.std)
            )
    return ExperimentTable(
        table_id="Table 5",
        title=f"Sample statistics per load, {spec.d} choices, n = {spec.n}",
        columns=["Scheme", "Load", "min", "avg", "max", "std.dev."],
        rows=rows,
        paper=paper,
        meta={"n": spec.n, "d": spec.d, "trials": spec.trials},
    )


def table6_heavy_load(
    spec: "ExperimentSpec | int | None" = None,
    *,
    balls_per_bin: int = 16,
    metrics: MetricsRegistry | None = None,
    progress: ProgressHook | None = None,
    d: int | None = None,
    n: int | None = None,
    trials: int | None = None,
    seed: int | None = None,
    workers: int | None = None,
) -> ExperimentTable:
    """Table 6: m = 16n balls into n bins — the higher-load regime."""
    spec = _spec_for(
        "table6", spec, d=d, n=n, trials=trials, seed=seed, workers=workers
    )
    m = spec.n * balls_per_bin
    spec = spec.replace(n_balls=m)
    random_res = run_experiment(
        FullyRandomChoices(spec.n, spec.d),
        _subrun(spec, "random"),
        metrics=metrics,
        progress=progress,
    )
    double_res = run_experiment(
        DoubleHashingChoices(spec.n, spec.d),
        _subrun(spec, "double", seed_offset=1),
        metrics=metrics,
        progress=progress,
    )
    fluid = solve_heavy_load(spec.d, balls_per_bin)
    fr = random_res.distribution.fractions
    fd = double_res.distribution.fractions
    width = max(len(fr), len(fd))
    rows = [
        (
            load,
            float(fr[load]) if load < len(fr) else 0.0,
            float(fd[load]) if load < len(fd) else 0.0,
            fluid.fraction_at(load),
        )
        for load in range(width)
        if (load < len(fr) and fr[load] > 0)
        or (load < len(fd) and fd[load] > 0)
    ]
    return ExperimentTable(
        table_id=f"Table 6 ({spec.d} choices)",
        title=f"{spec.d} choices, {m} balls into {spec.n} bins",
        columns=["Load", "Fully Random", "Double Hashing", "Fluid Limit"],
        rows=rows,
        paper={
            "random": PAPER_VALUES["table6"].get((spec.d, "random"), {}),
            "double": PAPER_VALUES["table6"].get((spec.d, "double"), {}),
        },
        meta={"n": spec.n, "m": m, "d": spec.d, "trials": spec.trials},
    )


def table7_dleft(
    spec: "ExperimentSpec | None" = None,
    *,
    n: int | None = None,
    d: int | None = None,
    trials: int | None = None,
    seed: int | None = None,
) -> ExperimentTable:
    """Table 7: Vöcking's d-left scheme, random vs double vs fluid."""
    spec = _spec_for("table7", spec, n=n, d=d, trials=trials, seed=seed)
    random_batch = simulate_dleft(
        make_dleft_scheme(spec.n, spec.d, "random"),
        spec.n,
        spec.trials,
        seed=spec.seed,
    )
    double_batch = simulate_dleft(
        make_dleft_scheme(spec.n, spec.d, "double"),
        spec.n,
        spec.trials,
        seed=None if spec.seed is None else spec.seed + 1,
    )
    fluid = solve_dleft(spec.d, 1.0)
    dr = random_batch.distribution()
    dd = double_batch.distribution()
    width = max(len(dr.counts), len(dd.counts))
    rows = [
        (
            load,
            dr.fraction_at(load),
            dd.fraction_at(load),
            fluid.fraction_at(load),
        )
        for load in range(width)
    ]
    log2_n = int(np.log2(spec.n)) if (spec.n & (spec.n - 1)) == 0 else None
    return ExperimentTable(
        table_id="Table 7",
        title=f"Vöcking's d-left scheme, {spec.d} choices, n = {spec.n}",
        columns=["Load", "Fully Random", "Double Hashing", "Fluid Limit"],
        rows=rows,
        paper={
            "random": PAPER_VALUES["table7"].get((log2_n, "random"), {}),
            "double": PAPER_VALUES["table7"].get((log2_n, "double"), {}),
        },
        meta={"n": spec.n, "d": spec.d, "trials": spec.trials},
    )


def table8_queueing(
    spec: "ExperimentSpec | None" = None,
    *,
    lambdas: tuple[float, ...] = (0.9, 0.99),
    d_values: tuple[int, ...] = (3, 4),
    n: int | None = None,
    sim_time: float | None = None,
    burn_in: float | None = None,
    seed: int | None = None,
) -> ExperimentTable:
    """Table 8: supermarket model, mean time in system.

    Scaled down from the paper's n = 2^14 / 10000 s / 100 runs; the
    equilibrium fluid-limit column provides the scale-free reference the
    simulated values converge to.
    """
    spec = _spec_for(
        "table8", spec, n=n, sim_time=sim_time, burn_in=burn_in, seed=seed
    )
    rows = []
    k = 0
    for lam in lambdas:
        for d_now in d_values:
            res_r = simulate_supermarket(
                FullyRandomChoices(spec.n, d_now), lam, spec.sim_time,
                burn_in=spec.effective_burn_in,
                seed=None if spec.seed is None else spec.seed + 2 * k,
                backend=spec.backend,
            )
            res_d = simulate_supermarket(
                DoubleHashingChoices(spec.n, d_now), lam, spec.sim_time,
                burn_in=spec.effective_burn_in,
                seed=None if spec.seed is None else spec.seed + 2 * k + 1,
                backend=spec.backend,
            )
            rows.append(
                (
                    lam,
                    d_now,
                    res_r.mean_sojourn_time,
                    res_d.mean_sojourn_time,
                    equilibrium_mean_sojourn_time(lam, d_now),
                )
            )
            k += 1
    return ExperimentTable(
        table_id="Table 8",
        title=f"n = {spec.n} queues, average time in system",
        columns=[
            "lambda", "Choices", "Fully Random", "Double Hashing",
            "Fluid Equilibrium",
        ],
        rows=rows,
        paper=PAPER_VALUES["table8"],
        meta={
            "n": spec.n,
            "sim_time": spec.sim_time,
            "burn_in": spec.effective_burn_in,
        },
    )
