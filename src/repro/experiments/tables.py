"""One function per table in the paper's evaluation.

Every function runs both schemes (fully random and double hashing) at a
configurable scale and returns an :class:`ExperimentTable` whose rows mirror
the paper's layout, with the published values attached for side-by-side
reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core import run_experiment, simulate_dleft
from repro.core.dleft import make_dleft_scheme
from repro.experiments.config import PAPER_VALUES
from repro.fluid import (
    equilibrium_mean_sojourn_time,
    solve_balls_bins,
    solve_dleft,
    solve_heavy_load,
)
from repro.hashing import DoubleHashingChoices, FullyRandomChoices
from repro.queueing import simulate_supermarket

__all__ = [
    "ExperimentTable",
    "table1_load_fractions",
    "table2_fluid_vs_simulation",
    "table3_larger_n",
    "table4_max_load",
    "table5_level_stats",
    "table6_heavy_load",
    "table7_dleft",
    "table8_queueing",
]


@dataclass
class ExperimentTable:
    """A reproduced table: header, measured rows, and paper reference.

    Attributes
    ----------
    table_id:
        Paper table identifier, e.g. ``"Table 1(a)"``.
    title:
        Caption-style description.
    columns:
        Column names, first column is the row key (e.g. load level).
    rows:
        List of row tuples aligned with ``columns``.
    paper:
        The published values relevant to this run (shape varies by table).
    meta:
        Run parameters (n, d, trials, …) for the report header.
    """

    table_id: str
    title: str
    columns: list[str]
    rows: list[tuple]
    paper: Any
    meta: dict = field(default_factory=dict)


def table1_load_fractions(
    d: int = 3,
    *,
    n: int = 2**14,
    trials: int = 100,
    seed: int = 1,
    workers: int = 1,
) -> ExperimentTable:
    """Table 1: load fractions, random vs double, n balls into n bins."""
    random_res = run_experiment(
        FullyRandomChoices(n, d), n, trials, seed=seed, workers=workers
    )
    double_res = run_experiment(
        DoubleHashingChoices(n, d), n, trials, seed=seed + 1, workers=workers
    )
    fr = random_res.distribution.fractions
    fd = double_res.distribution.fractions
    width = max(len(fr), len(fd))
    rows = [
        (
            load,
            float(fr[load]) if load < len(fr) else 0.0,
            float(fd[load]) if load < len(fd) else 0.0,
        )
        for load in range(width)
    ]
    sub = "a" if d == 3 else "b"
    return ExperimentTable(
        table_id=f"Table 1({sub})",
        title=f"{d} choices, n = {n} balls and bins",
        columns=["Load", "Fully Random", "Double Hashing"],
        rows=rows,
        paper={
            "random": PAPER_VALUES["table1"].get((d, "random"), {}),
            "double": PAPER_VALUES["table1"].get((d, "double"), {}),
        },
        meta={"n": n, "d": d, "trials": trials},
    )


def table2_fluid_vs_simulation(
    *,
    n: int = 2**14,
    d: int = 3,
    trials: int = 100,
    seed: int = 2,
    workers: int = 1,
) -> ExperimentTable:
    """Table 2: fluid-limit tail fractions vs both simulated schemes."""
    fluid = solve_balls_bins(d, 1.0)
    random_res = run_experiment(
        FullyRandomChoices(n, d), n, trials, seed=seed, workers=workers
    )
    double_res = run_experiment(
        DoubleHashingChoices(n, d), n, trials, seed=seed + 1, workers=workers
    )
    max_tail = max(
        len(random_res.distribution.counts), len(double_res.distribution.counts)
    )
    rows = [
        (
            load,
            fluid.tail_at(load),
            random_res.distribution.tail_at(load),
            double_res.distribution.tail_at(load),
        )
        for load in range(1, max_tail)
    ]
    return ExperimentTable(
        table_id="Table 2",
        title=f"{d} choices, fluid limit (n = inf) vs n = {n} balls and bins",
        columns=["Tail load >=", "Fluid Limit", "Fully Random", "Double Hashing"],
        rows=rows,
        paper=PAPER_VALUES["table2"],
        meta={"n": n, "d": d, "trials": trials},
    )


def table3_larger_n(
    d: int = 3,
    *,
    log2_n: int = 16,
    trials: int = 50,
    seed: int = 3,
    workers: int = 1,
) -> ExperimentTable:
    """Table 3: load fractions at larger table sizes (2^16, 2^18)."""
    n = 2**log2_n
    table = table1_load_fractions(
        d, n=n, trials=trials, seed=seed, workers=workers
    )
    table.table_id = f"Table 3 (n = 2^{log2_n}, d = {d})"
    table.paper = {
        "random": PAPER_VALUES["table3"].get((log2_n, d, "random"), {}),
        "double": PAPER_VALUES["table3"].get((log2_n, d, "double"), {}),
    }
    return table


def table4_max_load(
    d: int = 3,
    *,
    log2_n_values: tuple[int, ...] = (10, 11, 12, 13, 14),
    trials: int = 200,
    seed: int = 4,
    workers: int = 1,
) -> ExperimentTable:
    """Table 4: percentage of trials whose maximum load is exactly 3."""
    rows = []
    for k, log2_n in enumerate(log2_n_values):
        n = 2**log2_n
        random_res = run_experiment(
            FullyRandomChoices(n, d), n, trials, seed=seed + 2 * k, workers=workers
        )
        double_res = run_experiment(
            DoubleHashingChoices(n, d),
            n,
            trials,
            seed=seed + 2 * k + 1,
            workers=workers,
        )
        rows.append(
            (
                f"2^{log2_n}",
                100.0 * random_res.distribution.fraction_trials_max_load(3),
                100.0 * double_res.distribution.fraction_trials_max_load(3),
            )
        )
    return ExperimentTable(
        table_id=f"Table 4 ({d} choices)",
        title=f"Percentage of trials with maximum load 3, {d} choices",
        columns=["n", "Fully Random", "Double Hashing"],
        rows=rows,
        paper={
            "random": PAPER_VALUES["table4"].get((d, "random"), {}),
            "double": PAPER_VALUES["table4"].get((d, "double"), {}),
        },
        meta={"d": d, "trials": trials},
    )


def table5_level_stats(
    *,
    n: int = 2**18,
    d: int = 4,
    trials: int = 30,
    seed: int = 5,
    workers: int = 1,
) -> ExperimentTable:
    """Table 5: per-load min/avg/max/std of bin counts across trials."""
    rows: list[tuple] = []
    paper = PAPER_VALUES["table5"]
    for label, scheme, s in (
        ("random", FullyRandomChoices(n, d), seed),
        ("double", DoubleHashingChoices(n, d), seed + 1),
    ):
        res = run_experiment(scheme, n, trials, seed=s, workers=workers)
        top = len(res.distribution.counts) - 1
        for load in range(top + 1):
            st = res.aggregator.level_stats(load)
            rows.append(
                (label, load, st.minimum, st.mean, st.maximum, st.std)
            )
    return ExperimentTable(
        table_id="Table 5",
        title=f"Sample statistics per load, {d} choices, n = {n}",
        columns=["Scheme", "Load", "min", "avg", "max", "std.dev."],
        rows=rows,
        paper=paper,
        meta={"n": n, "d": d, "trials": trials},
    )


def table6_heavy_load(
    d: int = 3,
    *,
    n: int = 2**14,
    balls_per_bin: int = 16,
    trials: int = 50,
    seed: int = 6,
    workers: int = 1,
) -> ExperimentTable:
    """Table 6: m = 16n balls into n bins — the higher-load regime."""
    m = n * balls_per_bin
    random_res = run_experiment(
        FullyRandomChoices(n, d), m, trials, seed=seed, workers=workers
    )
    double_res = run_experiment(
        DoubleHashingChoices(n, d), m, trials, seed=seed + 1, workers=workers
    )
    fluid = solve_heavy_load(d, balls_per_bin)
    fr = random_res.distribution.fractions
    fd = double_res.distribution.fractions
    width = max(len(fr), len(fd))
    rows = [
        (
            load,
            float(fr[load]) if load < len(fr) else 0.0,
            float(fd[load]) if load < len(fd) else 0.0,
            fluid.fraction_at(load),
        )
        for load in range(width)
        if (load < len(fr) and fr[load] > 0)
        or (load < len(fd) and fd[load] > 0)
    ]
    return ExperimentTable(
        table_id=f"Table 6 ({d} choices)",
        title=f"{d} choices, {m} balls into {n} bins",
        columns=["Load", "Fully Random", "Double Hashing", "Fluid Limit"],
        rows=rows,
        paper={
            "random": PAPER_VALUES["table6"].get((d, "random"), {}),
            "double": PAPER_VALUES["table6"].get((d, "double"), {}),
        },
        meta={"n": n, "m": m, "d": d, "trials": trials},
    )


def table7_dleft(
    *,
    n: int = 2**14,
    d: int = 4,
    trials: int = 100,
    seed: int = 7,
) -> ExperimentTable:
    """Table 7: Vöcking's d-left scheme, random vs double vs fluid."""
    random_batch = simulate_dleft(
        make_dleft_scheme(n, d, "random"), n, trials, seed=seed
    )
    double_batch = simulate_dleft(
        make_dleft_scheme(n, d, "double"), n, trials, seed=seed + 1
    )
    fluid = solve_dleft(d, 1.0)
    dr = random_batch.distribution()
    dd = double_batch.distribution()
    width = max(len(dr.counts), len(dd.counts))
    rows = [
        (
            load,
            dr.fraction_at(load),
            dd.fraction_at(load),
            fluid.fraction_at(load),
        )
        for load in range(width)
    ]
    log2_n = int(np.log2(n)) if (n & (n - 1)) == 0 else None
    return ExperimentTable(
        table_id="Table 7",
        title=f"Vöcking's d-left scheme, {d} choices, n = {n}",
        columns=["Load", "Fully Random", "Double Hashing", "Fluid Limit"],
        rows=rows,
        paper={
            "random": PAPER_VALUES["table7"].get((log2_n, "random"), {}),
            "double": PAPER_VALUES["table7"].get((log2_n, "double"), {}),
        },
        meta={"n": n, "d": d, "trials": trials},
    )


def table8_queueing(
    *,
    n: int = 2**10,
    lambdas: tuple[float, ...] = (0.9, 0.99),
    d_values: tuple[int, ...] = (3, 4),
    sim_time: float = 1000.0,
    burn_in: float = 100.0,
    seed: int = 8,
) -> ExperimentTable:
    """Table 8: supermarket model, mean time in system.

    Scaled down from the paper's n = 2^14 / 10000 s / 100 runs; the
    equilibrium fluid-limit column provides the scale-free reference the
    simulated values converge to.
    """
    rows = []
    k = 0
    for lam in lambdas:
        for d in d_values:
            res_r = simulate_supermarket(
                FullyRandomChoices(n, d), lam, sim_time,
                burn_in=burn_in, seed=seed + 2 * k,
            )
            res_d = simulate_supermarket(
                DoubleHashingChoices(n, d), lam, sim_time,
                burn_in=burn_in, seed=seed + 2 * k + 1,
            )
            rows.append(
                (
                    lam,
                    d,
                    res_r.mean_sojourn_time,
                    res_d.mean_sojourn_time,
                    equilibrium_mean_sojourn_time(lam, d),
                )
            )
            k += 1
    return ExperimentTable(
        table_id="Table 8",
        title=f"n = {n} queues, average time in system",
        columns=[
            "lambda", "Choices", "Fully Random", "Double Hashing",
            "Fluid Equilibrium",
        ],
        rows=rows,
        paper=PAPER_VALUES["table8"],
        meta={"n": n, "sim_time": sim_time, "burn_in": burn_in},
    )
