"""Declarative parameter sweeps with JSON persistence.

For the convergence questions the paper answers qualitatively ("for
sufficiently large n"), these sweeps make the quantitative version easy to
run and archive: each sweep varies one parameter, runs both schemes at
every point, and can be saved/reloaded as JSON via :mod:`repro.io` so long
runs are diffable across machines and library versions.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.core import simulate_batch
from repro.errors import ConfigurationError
from repro.fluid import solve_balls_bins
from repro.hashing import DoubleHashingChoices, FullyRandomChoices
from repro.io import load_json, save_json

__all__ = [
    "SweepResult",
    "convergence_sweep",
    "load_sweep",
    "save_sweep",
]


@dataclass(frozen=True)
class SweepResult:
    """One-parameter sweep over both schemes.

    Attributes
    ----------
    parameter:
        Name of the swept parameter (e.g. ``"log2_n"``).
    values:
        Swept values, ascending.
    metric:
        Name of the measured quantity.
    random, double:
        Metric per swept value, per scheme.
    meta:
        Fixed parameters of the sweep.
    """

    parameter: str
    values: tuple
    metric: str
    random: tuple
    double: tuple
    meta: dict


def convergence_sweep(
    d: int = 3,
    log2_n_values: tuple[int, ...] = (8, 10, 12),
    *,
    trials: int = 100,
    seed: int = 0,
) -> SweepResult:
    """Gap between simulated and fluid-limit load fractions, vs table size.

    The metric is ``max_i |sim fraction(i) − fluid fraction(i)|`` over
    i ≤ 3 — the finite-n error Corollary 9 says vanishes.
    """
    if len(log2_n_values) < 1:
        raise ConfigurationError("log2_n_values must be non-empty")
    if trials < 1:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    fluid = solve_balls_bins(d, 1.0)
    gaps: dict[str, list[float]] = {"random": [], "double": []}
    for k, log2_n in enumerate(log2_n_values):
        n = 2**log2_n
        for name, scheme in (
            ("random", FullyRandomChoices(n, d)),
            ("double", DoubleHashingChoices(n, d)),
        ):
            dist = simulate_batch(
                scheme, n, trials, seed=seed + 31 * k + (name == "double")
            ).distribution()
            gap = max(
                abs(dist.fraction_at(i) - fluid.fraction_at(i))
                for i in range(4)
            )
            gaps[name].append(float(gap))
    return SweepResult(
        parameter="log2_n",
        values=tuple(log2_n_values),
        metric="max |simulated - fluid| load fraction (i <= 3)",
        random=tuple(gaps["random"]),
        double=tuple(gaps["double"]),
        meta={"d": d, "trials": trials, "seed": seed},
    )


def save_sweep(result: SweepResult, path: str | Path) -> None:
    """Persist a sweep result as JSON."""
    payload = {"kind": "SweepResult", **asdict(result)}
    save_json(payload, path)


def load_sweep(path: str | Path) -> SweepResult:
    """Reload a sweep saved by :func:`save_sweep`."""
    data = load_json(path)
    if data.get("kind") != "SweepResult":
        raise ValueError(f"not a SweepResult payload: {data.get('kind')!r}")
    return SweepResult(
        parameter=data["parameter"],
        values=tuple(data["values"]),
        metric=data["metric"],
        random=tuple(data["random"]),
        double=tuple(data["double"]),
        meta=dict(data["meta"]),
    )
