"""Command-line interface: ``python -m repro <command> [options]``.

Commands
--------
- ``table1`` … ``table8`` — regenerate one paper table and print it;
- ``compare`` — run both schemes on a custom geometry and print the
  statistical indistinguishability report;
- ``fluid`` — print fluid-limit tail fractions for a given d and T;
- ``list`` — list available commands.

The CLI is a thin veneer over :mod:`repro.experiments`; everything it
prints is available programmatically.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.experiments import format_table
from repro.experiments import tables as _tables

__all__ = ["main", "build_parser"]

_TABLE_COMMANDS = {
    "table1": lambda a: _tables.table1_load_fractions(
        a.d, n=a.n, trials=a.trials, seed=a.seed, workers=a.workers
    ),
    "table2": lambda a: _tables.table2_fluid_vs_simulation(
        n=a.n, d=a.d, trials=a.trials, seed=a.seed, workers=a.workers
    ),
    "table3": lambda a: _tables.table3_larger_n(
        a.d, log2_n=a.log2_n, trials=a.trials, seed=a.seed, workers=a.workers
    ),
    "table4": lambda a: _tables.table4_max_load(
        a.d, trials=a.trials, seed=a.seed, workers=a.workers
    ),
    "table5": lambda a: _tables.table5_level_stats(
        n=a.n, d=a.d, trials=a.trials, seed=a.seed, workers=a.workers
    ),
    "table6": lambda a: _tables.table6_heavy_load(
        a.d, n=a.n, trials=a.trials, seed=a.seed, workers=a.workers
    ),
    "table7": lambda a: _tables.table7_dleft(
        n=a.n, d=max(a.d, 2), trials=a.trials, seed=a.seed
    ),
    "table8": lambda a: _tables.table8_queueing(
        n=min(a.n, 2**12), sim_time=a.sim_time, burn_in=a.sim_time / 5,
        seed=a.seed,
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Balanced Allocations and Double Hashing' "
            "(Mitzenmacher, SPAA 2014)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--n", type=int, default=2**12, help="bins (and balls)")
        p.add_argument("--d", type=int, default=3, help="choices per ball")
        p.add_argument("--trials", type=int, default=50)
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--workers", type=int, default=1)
        p.add_argument("--log2-n", type=int, default=14, dest="log2_n")
        p.add_argument("--sim-time", type=float, default=300.0, dest="sim_time")

    for name in _TABLE_COMMANDS:
        add_common(sub.add_parser(name, help=f"regenerate paper {name}"))

    compare = sub.add_parser(
        "compare", help="double vs random on a custom geometry"
    )
    add_common(compare)

    fluid = sub.add_parser("fluid", help="fluid-limit tail fractions")
    fluid.add_argument("--d", type=int, default=3)
    fluid.add_argument("--t", type=float, default=1.0)
    fluid.add_argument("--levels", type=int, default=6)

    zoo = sub.add_parser("zoo", help="all schemes side by side")
    add_common(zoo)

    peeling = sub.add_parser(
        "peeling", help="peeling threshold sweep (follow-up paper [30])"
    )
    peeling.add_argument("--n", type=int, default=2048)
    peeling.add_argument("--d", type=int, default=3)
    peeling.add_argument("--trials", type=int, default=8)
    peeling.add_argument("--seed", type=int, default=1)

    sub.add_parser("list", help="list available commands")
    sub.add_parser(
        "validate",
        help="run the built-in paper-anchor self-checks (~10 s)",
    )
    return parser


def _run_compare(args) -> int:
    from repro.analysis import compare_distributions
    from repro.core import run_experiment
    from repro.hashing import DoubleHashingChoices, FullyRandomChoices

    random_res = run_experiment(
        FullyRandomChoices(args.n, args.d), args.n, args.trials,
        seed=args.seed, workers=args.workers,
    )
    double_res = run_experiment(
        DoubleHashingChoices(args.n, args.d), args.n, args.trials,
        seed=args.seed + 1, workers=args.workers,
    )
    report = compare_distributions(
        random_res.distribution, double_res.distribution
    )
    print(f"n={args.n} d={args.d} trials={args.trials}")
    print(f"TV distance:        {report.tv_distance:.6f}")
    print(f"chi-square p-value: {report.p_value:.4f}")
    print(f"max deviation:      {report.max_deviation:.6f} "
          f"({report.max_deviation_sigmas:.2f} sigmas)")
    print("verdict: " + (
        "indistinguishable" if report.indistinguishable else "DIFFERENT"
    ))
    return 0


def _run_fluid(args) -> int:
    from repro.fluid import solve_balls_bins

    fl = solve_balls_bins(args.d, args.t, max_load=max(args.levels, 4))
    print(f"d={args.d}, T={args.t}: fraction of bins with load >= i")
    for i in range(1, args.levels + 1):
        print(f"  i={i}: {fl.tail_at(i):.6g}")
    return 0


def _run_zoo(args) -> int:
    from repro.experiments.extra import scheme_zoo_experiment

    d = args.d if args.d % 2 == 0 else args.d + 1
    n = args.n - args.n % d
    zoo = scheme_zoo_experiment(n, trials=args.trials, d=d, seed=args.seed)
    print(f"{'scheme':<20} {'empty':>9} {'load>=2':>9} {'mean max':>9}")
    for name, stats in zoo.items():
        print(f"{name:<20} {stats['empty']:>9.5f} {stats['tail2']:>9.5f} "
              f"{stats['max_load']:>9.2f}")
    return 0


def _run_peeling(args) -> int:
    from repro.peeling import threshold_experiment

    exp = threshold_experiment(
        args.n, args.d, [0.70, 0.78, 0.86, 0.94],
        trials=args.trials, seed=args.seed,
    )
    print(f"asymptotic threshold c*({args.d}) = "
          f"{exp.asymptotic_threshold:.5f}")
    print(f"{'density':>8} {'P(ok) rand':>11} {'P(ok) dbl':>10} "
          f"{'core rand':>10} {'core dbl':>9}")
    for i, c in enumerate(exp.densities):
        print(f"{c:>8.2f} {exp.success_random[i]:>11.2f} "
              f"{exp.success_double[i]:>10.2f} "
              f"{exp.core_fraction_random[i]:>10.4f} "
              f"{exp.core_fraction_double[i]:>9.4f}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print("commands: " + " ".join(sorted(_TABLE_COMMANDS) +
                                      ["compare", "fluid", "list",
                                       "peeling", "validate", "zoo"]))
        return 0
    if args.command == "zoo":
        return _run_zoo(args)
    if args.command == "peeling":
        return _run_peeling(args)
    if args.command == "validate":
        from repro.validation import run_validation

        return 0 if run_validation() else 1
    if args.command == "compare":
        return _run_compare(args)
    if args.command == "fluid":
        return _run_fluid(args)
    table = _TABLE_COMMANDS[args.command](args)
    print(format_table(table))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
