"""Command-line interface: ``python -m repro <command> [options]``.

Commands
--------
- ``table1`` … ``table8`` — regenerate one paper table and print it;
- ``certify`` — run a certification tier (``--tier smoke|standard|full``)
  against the paper-anchor registry and write ``certification.json``;
  ``--check-drift`` instead verifies EXPERIMENTS.md's paper columns
  against the registry without running anything;
- ``compare`` — run both schemes on a custom geometry and print the
  statistical indistinguishability report (``--scheme`` swaps the
  challenger drawn from the unified scheme registry);
- ``serve`` — drive a keyed workload through the service layer
  (:mod:`repro.service`) and print throughput + tail-load SLOs, e.g.
  ``python -m repro serve --scheme tabulation --keys 5e6 --churn 0.5``;
- ``fluid`` — print fluid-limit tail fractions for a given d and T;
- ``peeling`` — peeling threshold sweep (``--backend`` picks the kernel);
- ``reconcile`` — two-party IBLT set reconciliation: build, subtract,
  peel the delta, double-hashed vs fully-random cells;
- ``list`` — list available commands.

The CLI is a thin veneer over :mod:`repro.experiments`; everything it
prints is available programmatically.  Subcommand defaults come from the
same per-table :class:`~repro.experiments.config.ExperimentSpec` objects
the ``table*`` functions use (``TABLE_DEFAULTS``), so the CLI and the
programmatic path cannot drift.

Engine flags (every experiment subcommand): ``--workers``/``--chunks``
control fan-out; ``--retries``/``--chunk-timeout`` the fault-tolerance
policy; ``--checkpoint <path>.jsonl`` enables resumable sweeps;
``--metrics-out <path>.json`` writes the run's metrics snapshot; and
``--progress`` streams per-chunk completions to stderr.  See
``docs/engine.md``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.experiments import format_table
from repro.experiments import tables as _tables
from repro.experiments.config import TABLE_DEFAULTS, ExperimentSpec
from repro.hashing.registry import keyed_scheme_names, scheme_names
from repro.kernels.keymap import KNOWN_KEYMAP_BACKENDS
from repro.metrics import MetricsRegistry
from repro.parallel.engine import ChunkProgress

__all__ = ["main", "build_parser"]

_TABLE_COMMANDS = {
    "table1": lambda spec, a, m, p: _tables.table1_load_fractions(
        spec, metrics=m, progress=p
    ),
    "table2": lambda spec, a, m, p: _tables.table2_fluid_vs_simulation(
        spec, metrics=m, progress=p
    ),
    "table3": lambda spec, a, m, p: _tables.table3_larger_n(
        spec, metrics=m, progress=p
    ),
    "table4": lambda spec, a, m, p: _tables.table4_max_load(
        spec, metrics=m, progress=p
    ),
    "table5": lambda spec, a, m, p: _tables.table5_level_stats(
        spec, metrics=m, progress=p
    ),
    "table6": lambda spec, a, m, p: _tables.table6_heavy_load(
        spec, metrics=m, progress=p
    ),
    "table7": lambda spec, a, m, p: _tables.table7_dleft(
        spec.replace(d=max(spec.d, 2))
    ),
    "table8": lambda spec, a, m, p: _tables.table8_queueing(
        spec.replace(n=min(spec.n, 2**12), burn_in=spec.sim_time / 5)
    ),
}


def _add_spec_options(p: argparse.ArgumentParser, spec: ExperimentSpec) -> None:
    """Register the shared experiment options, defaulted from ``spec``."""
    p.add_argument("--n", type=int, default=spec.n, help="bins (and balls)")
    p.add_argument("--d", type=int, default=spec.d, help="choices per ball")
    p.add_argument("--trials", type=int, default=spec.trials)
    p.add_argument("--seed", type=int, default=spec.seed)
    p.add_argument("--workers", type=int, default=spec.workers)
    p.add_argument(
        "--chunks", type=int, default=spec.chunks,
        help="trial-chunk count (default: engine picks)",
    )
    p.add_argument(
        "--block", type=int, default=spec.block,
        help="ball-steps per kernel superblock (default: sweep-derived)",
    )
    p.add_argument(
        "--backend", choices=["numpy", "numba"], default=spec.backend,
        help="placement-kernel backend (default: REPRO_BACKEND, then auto)",
    )
    p.add_argument(
        "--trials-mode", choices=["chunked", "parallel"],
        default=spec.trials_mode, dest="trials_mode",
        help="'parallel' gives each trial an independent counter-based "
             "stream and runs them in one prange kernel (see docs/scale.md)",
    )
    p.add_argument(
        "--shards", type=int, default=spec.shards,
        help="aggregation shards for --trials-mode parallel "
             "(default: sized from n*d)",
    )
    p.add_argument("--log2-n", type=int, default=spec.log2_n, dest="log2_n")
    p.add_argument(
        "--sim-time", type=float, default=spec.sim_time, dest="sim_time"
    )
    p.add_argument(
        "--retries", type=int, default=spec.max_retries,
        help="per-chunk retries before the run fails",
    )
    p.add_argument(
        "--chunk-timeout", type=float, default=spec.chunk_timeout,
        dest="chunk_timeout",
        help="per-chunk wall-clock bound in seconds (pooled mode)",
    )
    p.add_argument(
        "--checkpoint", default=spec.checkpoint, metavar="PATH.jsonl",
        help="chunk-level checkpoint file; re-running resumes from it",
    )
    p.add_argument(
        "--metrics-out", default=spec.metrics_out, dest="metrics_out",
        metavar="PATH.json", help="write run metrics (timings, retries) here",
    )
    p.add_argument(
        "--progress", action="store_true",
        help="print per-chunk completions to stderr",
    )


def _spec_from_args(command: str, args: argparse.Namespace) -> ExperimentSpec:
    """Materialize the run spec for a parsed subcommand."""
    base = TABLE_DEFAULTS.get(command, ExperimentSpec())
    return base.replace(
        n=args.n,
        d=args.d,
        trials=args.trials,
        seed=args.seed,
        workers=args.workers,
        chunks=args.chunks,
        block=args.block,
        backend=args.backend,
        trials_mode=args.trials_mode,
        shards=args.shards,
        log2_n=args.log2_n,
        sim_time=args.sim_time,
        max_retries=args.retries,
        chunk_timeout=args.chunk_timeout,
        checkpoint=args.checkpoint,
        metrics_out=args.metrics_out,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Balanced Allocations and Double Hashing' "
            "(Mitzenmacher, SPAA 2014)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name in _TABLE_COMMANDS:
        _add_spec_options(
            sub.add_parser(name, help=f"regenerate paper {name}"),
            TABLE_DEFAULTS[name],
        )

    compare = sub.add_parser(
        "compare", help="double vs random on a custom geometry"
    )
    _add_spec_options(compare, ExperimentSpec())
    compare.add_argument(
        "--scheme", choices=list(scheme_names()), default=None,
        help="challenger scheme vs fully random "
             "(default: REPRO_SCHEME, then 'double')",
    )

    serve = sub.add_parser(
        "serve",
        help="keyed service workload: throughput + tail-load SLOs",
    )
    serve.add_argument(
        "--scheme", choices=list(keyed_scheme_names()), default=None,
        help="keyed placement scheme (default: REPRO_SCHEME, then 'double')",
    )
    serve.add_argument(
        "--bins", type=float, default=2**16,
        help="number of bins (accepts 65536 or 6.5e4 forms)",
    )
    serve.add_argument("--d", type=int, default=2, help="choices per key")
    serve.add_argument(
        "--keys", type=float, default=2**18,
        help="insert operations in the stream (accepts 5e6-style floats)",
    )
    serve.add_argument("--batch", type=int, default=8192,
                       help="nominal inserts per workload step")
    serve.add_argument("--churn", type=float, default=0.0,
                       help="delete attempts per insert")
    serve.add_argument("--lookups", type=float, default=0.0,
                       help="lookups per insert")
    serve.add_argument("--popularity", choices=["uniform", "zipf"],
                       default="uniform",
                       help="victim/lookup key popularity model")
    serve.add_argument("--zipf-s", type=float, default=1.2, dest="zipf_s",
                       help="Zipf exponent for --popularity zipf")
    serve.add_argument("--arrival", choices=["constant", "ramp", "sine"],
                       default="constant", help="per-step intensity shape")
    serve.add_argument("--shards", type=int, default=1,
                       help="shard count (power of two; 1 = single store)")
    serve.add_argument(
        "--backend", choices=list(KNOWN_KEYMAP_BACKENDS), default=None,
        help="assignment-map kernel tier (default: REPRO_BACKEND, then auto)",
    )
    serve.add_argument("--seed", type=int, default=1)
    serve.add_argument("--micro-batch", type=int, default=None,
                       dest="micro_batch",
                       help="keys per placement micro-batch")
    serve.add_argument("--slo-samples", type=int, default=32,
                       dest="slo_samples",
                       help="tail-SLO samples over the run (0 disables)")
    serve.add_argument("--metrics-out", default=None, dest="metrics_out",
                       metavar="PATH.json",
                       help="write the metrics snapshot (incl. SLO series)")

    fluid = sub.add_parser("fluid", help="fluid-limit tail fractions")
    fluid.add_argument("--d", type=int, default=3)
    fluid.add_argument("--t", type=float, default=1.0)
    fluid.add_argument("--levels", type=int, default=6)

    zoo = sub.add_parser("zoo", help="all schemes side by side")
    _add_spec_options(zoo, ExperimentSpec())

    peeling = sub.add_parser(
        "peeling", help="peeling threshold sweep (follow-up paper [30])"
    )
    peeling.add_argument("--n", type=int, default=2048)
    peeling.add_argument("--d", type=int, default=3)
    peeling.add_argument("--trials", type=int, default=8)
    peeling.add_argument("--seed", type=int, default=1)
    peeling.add_argument(
        "--backend", choices=["numpy", "numba"], default=None,
        help="peeling-kernel backend (default: REPRO_BACKEND, then auto)",
    )

    reconcile = sub.add_parser(
        "reconcile",
        help="two-party IBLT set reconciliation (peel the difference)",
    )
    reconcile.add_argument(
        "--items", type=float, default=1e6,
        help="items per party (accepts 1e6-style floats)",
    )
    reconcile.add_argument(
        "--diff", type=float, default=1e3,
        help="symmetric-difference size (the delta to recover)",
    )
    reconcile.add_argument("--d", type=int, default=3, help="cells per key")
    reconcile.add_argument(
        "--mode", choices=["double", "random", "both"], default="both",
        help="cell-selection mode ('both' runs the comparison)",
    )
    reconcile.add_argument(
        "--cells", type=int, default=None,
        help="IBLT cells (default: sized from --diff via the peeling "
             "threshold)",
    )
    reconcile.add_argument("--seed", type=int, default=1)

    certify = sub.add_parser(
        "certify",
        help="statistical certification against the paper-anchor registry",
    )
    certify.add_argument(
        "--tier", choices=["smoke", "standard", "full"], default="smoke",
        help="budget/threshold tier (see docs/certification.md)",
    )
    certify.add_argument(
        "--out", default="certification.json", metavar="PATH.json",
        help="where to write the machine-readable verdict",
    )
    certify.add_argument(
        "--backend", choices=["numpy", "numba"], default=None,
        help="kernel backend override for every run",
    )
    certify.add_argument("--workers", type=int, default=None)
    certify.add_argument(
        "--trials-mode", choices=["chunked", "parallel"], default=None,
        dest="trials_mode",
        help="trial-execution mode override for every run",
    )
    certify.add_argument(
        "--shards", type=int, default=None,
        help="aggregation shards for --trials-mode parallel",
    )
    certify.add_argument(
        "--progress", action="store_true",
        help="print per-chunk completions to stderr",
    )
    certify.add_argument(
        "--check-drift", action="store_true",
        help="only verify EXPERIMENTS.md paper columns against the "
             "registry (fast, no experiments)",
    )
    certify.add_argument(
        "--experiments-md", default="EXPERIMENTS.md", dest="experiments_md",
        metavar="PATH.md", help="document for --check-drift / --emit-experiments-md",
    )
    certify.add_argument(
        "--emit-experiments-md", action="store_true", dest="emit_experiments_md",
        help="regenerate the EXPERIMENTS.md document (runs experiments, "
             "a few minutes)",
    )

    sub.add_parser("list", help="list available commands")
    sub.add_parser(
        "validate",
        help="run the built-in paper-anchor self-checks (~10 s)",
    )
    return parser


def _print_progress(event: ChunkProgress) -> None:
    print(
        f"[engine] chunk {event.done}/{event.total} done "
        f"(index {event.index}, {event.trials} trials, "
        f"{event.seconds:.3f}s, {event.source})",
        file=sys.stderr,
    )


def _run_compare(args) -> int:
    from repro.analysis import compare_distributions
    from repro.core import run_experiment
    from repro.hashing import FullyRandomChoices, resolve_scheme_name

    spec = _spec_from_args("compare", args).replace(scheme=args.scheme)
    scheme_name = resolve_scheme_name(spec.scheme)
    random_res = run_experiment(FullyRandomChoices(spec.n, spec.d), spec)
    double_res = run_experiment(
        spec.build_scheme(seed=spec.seed),
        spec.replace(
            seed=None if spec.seed is None else spec.seed + 1,
            metrics_out=None,
            checkpoint=None,
        ),
    )
    report = compare_distributions(
        random_res.distribution, double_res.distribution
    )
    print(f"n={spec.n} d={spec.d} trials={spec.trials} "
          f"scheme={scheme_name} (vs fully random)")
    print(f"TV distance:        {report.tv_distance:.6f}")
    print(f"chi-square p-value: {report.p_value:.4f}")
    print(f"max deviation:      {report.max_deviation:.6f} "
          f"({report.max_deviation_sigmas:.2f} sigmas)")
    print("verdict: " + (
        "indistinguishable" if report.indistinguishable else "DIFFERENT"
    ))
    return 0


def _run_serve(args) -> int:
    from repro.service import DEFAULT_MICRO_BATCH, WorkloadSpec
    from repro.service import run_service_workload

    spec = WorkloadSpec(
        n_keys=int(args.keys),
        batch=args.batch,
        churn=args.churn,
        lookups=args.lookups,
        popularity=args.popularity,
        zipf_s=args.zipf_s,
        arrival=args.arrival,
    )
    metrics = MetricsRegistry()
    report = run_service_workload(
        spec,
        n_bins=int(args.bins),
        d=args.d,
        scheme=args.scheme,
        n_shards=args.shards,
        seed=args.seed,
        micro_batch=(
            args.micro_batch if args.micro_batch is not None
            else DEFAULT_MICRO_BATCH
        ),
        backend=args.backend,
        slo_samples=args.slo_samples,
        metrics=metrics,
    )
    print(f"scheme={report.scheme} bins={report.n_bins} d={report.d} "
          f"shards={report.n_shards} backend={report.backend}")
    print(f"ops={report.ops} (inserts={report.inserts} "
          f"deletes={report.deletes} lookups={report.lookups}) "
          f"live={report.size}")
    print(f"throughput: {report.ops_per_sec:,.0f} ops/s total, "
          f"{report.insert_ops_per_sec:,.0f} insert ops/s")
    print(f"tail loads: max={report.max_load} p50={report.p50:.1f} "
          f"p99={report.p99:.1f} p999={report.p999:.1f}")
    print(f"slo samples: {len(report.slo_series)}")
    if args.metrics_out:
        metrics.save(args.metrics_out)
        print(f"[metrics] wrote {args.metrics_out}", file=sys.stderr)
    return 0


def _run_fluid(args) -> int:
    from repro.fluid import solve_balls_bins

    fl = solve_balls_bins(args.d, args.t, max_load=max(args.levels, 4))
    print(f"d={args.d}, T={args.t}: fraction of bins with load >= i")
    for i in range(1, args.levels + 1):
        print(f"  i={i}: {fl.tail_at(i):.6g}")
    return 0


def _run_zoo(args) -> int:
    from repro.experiments.extra import scheme_zoo_experiment

    d = args.d if args.d % 2 == 0 else args.d + 1
    n = args.n - args.n % d
    zoo = scheme_zoo_experiment(n, trials=args.trials, d=d, seed=args.seed)
    print(f"{'scheme':<20} {'empty':>9} {'load>=2':>9} {'mean max':>9}")
    for name, stats in zoo.items():
        print(f"{name:<20} {stats['empty']:>9.5f} {stats['tail2']:>9.5f} "
              f"{stats['max_load']:>9.2f}")
    return 0


def _run_peeling(args) -> int:
    from repro.peeling import threshold_experiment

    exp = threshold_experiment(
        args.n, args.d, [0.70, 0.78, 0.86, 0.94],
        trials=args.trials, seed=args.seed, backend=args.backend,
    )
    print(f"asymptotic threshold c*({args.d}) = "
          f"{exp.asymptotic_threshold:.5f}")
    print(f"{'density':>8} {'P(ok) rand':>11} {'P(ok) dbl':>10} "
          f"{'core rand':>10} {'core dbl':>9}")
    for i, c in enumerate(exp.densities):
        print(f"{c:>8.2f} {exp.success_random[i]:>11.2f} "
              f"{exp.success_double[i]:>10.2f} "
              f"{exp.core_fraction_random[i]:>10.4f} "
              f"{exp.core_fraction_double[i]:>9.4f}")
    return 0


def _run_reconcile(args) -> int:
    from repro.extensions.reconcile import run_reconciliation

    modes = ["double", "random"] if args.mode == "both" else [args.mode]
    n_items = int(args.items)
    n_diff = int(args.diff)
    failures = 0
    for mode in modes:
        r = run_reconciliation(
            n_items, n_diff, d=args.d, mode=mode,
            cells=args.cells, seed=args.seed,
        )
        verdict = "recovered" if r.success else (
            f"INCOMPLETE (missed={r.missed} spurious={r.spurious} "
            f"residue={r.residue_cells})"
        )
        print(f"[{mode:>6}] items={r.n_items:,} diff={r.n_diff:,} "
              f"cells={r.cells:,} d={r.d}: {verdict}")
        print(f"         delta |A\\B|={r.only_in_a.size} "
              f"|B\\A|={r.only_in_b.size} in {r.rounds} rounds")
        print(f"         build {r.build_seconds:.3f}s "
              f"({r.n_items / max(r.build_seconds, 1e-9):,.0f} items/s), "
              f"subtract+peel {r.reconcile_seconds:.3f}s "
              f"({r.delta_per_second:,.0f} delta keys/s)")
        failures += not r.success
    return 1 if failures else 0


def _run_certify(args) -> int:
    from repro.certify import (
        check_experiments_md_drift,
        render_experiments_md,
        run_certification,
    )
    from repro.certify.verdict import format_summary, write_certification

    if args.check_drift:
        problems = check_experiments_md_drift(args.experiments_md)
        for problem in problems:
            print(f"[drift] {problem}", file=sys.stderr)
        print(
            f"{args.experiments_md}: "
            + ("in sync with the anchor registry" if not problems
               else f"{len(problems)} paper-column mismatches")
        )
        return 1 if problems else 0
    if args.emit_experiments_md:
        progress = _print_progress if args.progress else None
        text = render_experiments_md(progress=progress)
        with open(args.experiments_md, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.experiments_md}")
        return 0
    progress = _print_progress if args.progress else None
    cert = run_certification(
        args.tier, backend=args.backend, workers=args.workers,
        trials_mode=args.trials_mode, shards=args.shards,
        progress=progress,
    )
    write_certification(cert, args.out)
    print(format_summary(cert))
    print(f"wrote {args.out}")
    return 0 if cert.passed else 1


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print("commands: " + " ".join(sorted(_TABLE_COMMANDS) +
                                      ["certify", "compare", "fluid", "list",
                                       "peeling", "reconcile", "serve",
                                       "validate", "zoo"]))
        return 0
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "certify":
        return _run_certify(args)
    if args.command == "zoo":
        return _run_zoo(args)
    if args.command == "peeling":
        return _run_peeling(args)
    if args.command == "reconcile":
        return _run_reconcile(args)
    if args.command == "validate":
        from repro.validation import run_validation

        return 0 if run_validation() else 1
    if args.command == "compare":
        return _run_compare(args)
    if args.command == "fluid":
        return _run_fluid(args)
    spec = _spec_from_args(args.command, args)
    metrics = MetricsRegistry()
    progress = _print_progress if args.progress else None
    table = _TABLE_COMMANDS[args.command](spec, args, metrics, progress)
    print(format_table(table))
    if args.metrics_out:
        metrics.save(args.metrics_out)
        print(f"[metrics] wrote {args.metrics_out}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
