"""Text rendering of reproduced tables, paper-vs-measured.

:func:`format_table` prints one :class:`~repro.experiments.tables.ExperimentTable`
in an aligned fixed-width layout resembling the paper's tables;
:func:`render_all` runs a configurable subset of the experiments and
concatenates the reports (used by ``examples/`` and by EXPERIMENTS.md
generation).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.experiments.tables import ExperimentTable

__all__ = ["format_number", "format_table", "render_all"]


def format_number(value) -> str:
    """Numeric formatting matching the paper's style.

    Fractions print with 5 decimals; very small values switch to scientific
    notation (the paper prints e.g. ``2.25 · 10^-5``); integers stay plain.
    """
    if isinstance(value, str):
        return value
    if isinstance(value, int):
        return str(value)
    v = float(value)
    if v == 0.0:
        return "0"
    if abs(v) < 5e-5:
        return f"{v:.2e}"
    if abs(v) >= 100:
        return f"{v:.2f}"
    return f"{v:.5f}"


def format_table(table: ExperimentTable, *, show_meta: bool = True) -> str:
    """Render one experiment table as aligned text."""
    header = [table.table_id + ": " + table.title]
    if show_meta and table.meta:
        meta = ", ".join(f"{k}={v}" for k, v in table.meta.items())
        header.append(f"  [{meta}]")
    str_rows = [
        [format_number(cell) for cell in row] for row in table.rows
    ]
    widths = [
        max(len(col), *(len(r[i]) for r in str_rows)) if str_rows else len(col)
        for i, col in enumerate(table.columns)
    ]
    lines = [
        "  ".join(col.ljust(w) for col, w in zip(table.columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(header + lines)


def render_all(
    experiments: Iterable[Callable[[], ExperimentTable]],
) -> str:
    """Run each experiment thunk and join the formatted reports."""
    blocks = []
    for thunk in experiments:
        blocks.append(format_table(thunk()))
    return "\n\n".join(blocks)
