"""Experiment harness: one function per table in the paper's evaluation.

Each ``table*`` function runs the corresponding experiment at a configurable
scale and returns an :class:`~repro.experiments.tables.ExperimentTable`
holding the measured rows next to the paper's published values, ready for
text rendering via :func:`~repro.experiments.report.format_table`.

Each ``table*`` function takes an
:class:`~repro.experiments.config.ExperimentSpec`; per-table defaults live
in ``TABLE_DEFAULTS`` and are shared with the CLI.  Default scales are
sized for minutes, not the paper's 10⁴-trial overnight runs; pass a spec
with larger ``trials``/``n`` to approach paper scale (the modules are
memory-safe at any trial count thanks to streaming aggregation, and the
resilient engine checkpoints long sweeps — see ``docs/engine.md``).
"""

from repro.experiments.config import (
    PAPER_VALUES,
    TABLE_DEFAULTS,
    ExperimentScale,
    ExperimentSpec,
)
from repro.experiments.report import format_table, render_all
from repro.experiments.tables import (
    ExperimentTable,
    table1_load_fractions,
    table2_fluid_vs_simulation,
    table3_larger_n,
    table4_max_load,
    table5_level_stats,
    table6_heavy_load,
    table7_dleft,
    table8_queueing,
)

__all__ = [
    "ExperimentScale",
    "ExperimentSpec",
    "ExperimentTable",
    "PAPER_VALUES",
    "TABLE_DEFAULTS",
    "format_table",
    "render_all",
    "table1_load_fractions",
    "table2_fluid_vs_simulation",
    "table3_larger_n",
    "table4_max_load",
    "table5_level_stats",
    "table6_heavy_load",
    "table7_dleft",
    "table8_queueing",
]
