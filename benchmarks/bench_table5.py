"""Bench: regenerate paper Table 5 — per-load sample statistics.

Paper shape (d = 4, n = 2^18): the per-trial count of bins at each load
has a tiny relative spread (std/mean ~ 0.3% at loads 0-2), identical
between schemes.  At the bench's reduced n the *relative* spread is the
scale-free observable: std/mean stays below ~2% and the scheme means agree.
"""

from __future__ import annotations

import pytest

from repro.experiments import table5_level_stats

# Limiting fractions for d = 4 (what mean/n must approach).
LIMIT_D4 = {0: 0.14082, 1: 0.71838, 2: 0.14077}


def bench_table5(benchmark, scale, attach, track_chunks):
    spec = scale.spec(d=4, trials=max(scale.trials // 2, 10))
    table = benchmark.pedantic(
        table5_level_stats,
        args=(spec,),
        kwargs=dict(progress=track_chunks),
        rounds=1,
        iterations=1,
    )
    rows = {(row[0], row[1]): row for row in table.rows}
    for load, frac in LIMIT_D4.items():
        for schm in ("random", "double"):
            _, _, mn, avg, mx, std = rows[(schm, load)]
            assert mn <= avg <= mx
            assert avg == pytest.approx(frac * scale.n, rel=0.01)
            assert std / avg < 0.05  # tight concentration, as in the paper
        assert rows[("random", load)][3] == pytest.approx(
            rows[("double", load)][3], rel=0.01
        )
    attach(rows=table.rows[:12])
