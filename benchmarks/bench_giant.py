#!/usr/bin/env python
"""Giant-n smoke benchmark: parallel-trials placement at 10^7-bin scale.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_giant.py \
        [--n 16777216] [--trials 2] [--budget-seconds 600]

This is the shipped acceptance run for the giant-n scale-out (see
``docs/scale.md``): ``trials`` independent trials of ``m = n`` balls into
``n`` bins through :func:`repro.kernels.run_parallel_trials` — the numba
``prange`` kernel when numba is importable, the numpy fallback otherwise
(same results either way; that is the seed-equivalence contract).  Load
tables are sharded per :func:`repro.kernels.default_shards` unless
``--shards`` overrides.

The report records wall-clock, balls/second, peak RSS (must stay
O(shard) + one O(n) load table per in-flight trial), and the merged
histogram; ``--budget-seconds`` turns the wall-clock bound into a hard
failure so CI catches regressions loudly.
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.hashing import DoubleHashingChoices             # noqa: E402
from repro.kernels import (                                # noqa: E402
    available_backends,
    default_shards,
    resolve_backend,
    run_parallel_trials,
)


def _peak_rss_bytes():
    """Peak resident set size of this process, in bytes."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes, macOS bytes.
    return rss * 1024 if sys.platform != "darwin" else rss


def run(n=2**24, d=3, trials=2, seed=20140623, shards=None, backend=None):
    """One timed giant-n run; returns the JSON report dict."""
    scheme = DoubleHashingChoices(n, d)
    impl = resolve_backend(backend)
    used_shards = shards if shards is not None else default_shards(n, d)

    # Warm-up on a small geometry so numba JIT compilation (when present)
    # stays outside the timed region.
    run_parallel_trials(
        DoubleHashingChoices(1024, d), 1024, 1, root=seed, backend=backend
    )

    t0 = time.perf_counter()
    hist = run_parallel_trials(
        scheme, n, trials, root=seed, shards=used_shards, backend=backend
    )
    elapsed = time.perf_counter() - t0

    totals = (hist * np.arange(hist.shape[1])).sum(axis=1)
    assert (totals == n).all(), "ball conservation violated"
    merged = hist.sum(axis=0)
    return {
        "geometry": {
            "n_bins": n, "d": d, "n_balls": n, "trials": trials,
            "seed": seed, "shards": used_shards, "scheme": "double-hashing",
        },
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "backends_available": list(available_backends()),
            "backend_used": impl.name,
        },
        "results": {
            "wall_seconds": round(elapsed, 3),
            "balls_per_second": round(n * trials / elapsed, 1),
            "peak_rss_bytes": _peak_rss_bytes(),
            "max_load": int(np.flatnonzero(merged)[-1]),
            "merged_histogram": merged.tolist(),
        },
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_giant.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--n", type=int, default=2**24,
        help="bins and balls per trial (default 2^24 ~ 1.7e7)",
    )
    parser.add_argument("--d", type=int, default=3)
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--seed", type=int, default=20140623)
    parser.add_argument(
        "--shards", type=int, default=None,
        help="aggregation shards (default: sized from n*d)",
    )
    parser.add_argument(
        "--backend", choices=["numpy", "numba"], default=None,
        help="kernel backend (default: REPRO_BACKEND, then auto)",
    )
    parser.add_argument(
        "--budget-seconds", type=float, default=None, dest="budget_seconds",
        help="fail (exit 1) when the timed run exceeds this wall-clock",
    )
    args = parser.parse_args(argv)

    report = run(
        n=args.n, d=args.d, trials=args.trials, seed=args.seed,
        shards=args.shards, backend=args.backend,
    )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    r = report["results"]
    print(
        f"n={args.n:,} trials={args.trials} "
        f"backend={report['host']['backend_used']} "
        f"shards={report['geometry']['shards']}"
    )
    print(
        f"wall {r['wall_seconds']:.1f}s  {r['balls_per_second']:,.0f} balls/s  "
        f"peak RSS {r['peak_rss_bytes'] / 2**20:,.0f} MiB  "
        f"max load {r['max_load']}"
    )
    print(f"wrote {args.out}")
    if args.budget_seconds is not None and r["wall_seconds"] > args.budget_seconds:
        print(
            f"ERROR: wall-clock {r['wall_seconds']:.1f}s exceeded the "
            f"--budget-seconds {args.budget_seconds:.1f}s bound",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
