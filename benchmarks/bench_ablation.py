"""Ablation benches for the design choices DESIGN.md calls out.

- with vs. without replacement for the fully-random baseline (the paper's
  footnote 7: the difference only matters for very small n);
- PRNG substitution: drand48 (the paper's generator) vs numpy PCG64 —
  the load law must not depend on the randomness source;
- prime vs. power-of-two table size for double hashing (footnote 5);
- scalar reference engine vs. vectorized engine (same law, large speedup);
- choice-generation cost: double hashing needs 2 hash values, fully random
  needs d — the practical advantage the paper emphasizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import simulate_batch, simulate_single_trial
from repro.hashing import DoubleHashingChoices, FullyRandomChoices
from repro.numtheory import next_prime
from repro.rng import Drand48


def bench_ablation_replacement(benchmark, scale, attach):
    """Without vs with replacement: indistinguishable at moderate n."""

    def run():
        a = simulate_batch(
            FullyRandomChoices(scale.n, 3), scale.n, scale.trials,
            seed=scale.seed,
        ).distribution()
        b = simulate_batch(
            FullyRandomChoices(scale.n, 3, replacement=True), scale.n,
            scale.trials, seed=scale.seed + 1,
        ).distribution()
        return a, b

    a, b = benchmark.pedantic(run, rounds=1, iterations=1)
    for load in range(3):
        assert a.fraction_at(load) == pytest.approx(
            b.fraction_at(load), abs=0.004
        )
    attach(without=[round(x, 5) for x in a.fractions[:4]],
           with_repl=[round(x, 5) for x in b.fractions[:4]])


def bench_ablation_prng(benchmark, scale, attach):
    """drand48-driven run vs PCG64-driven run: same load law.

    The drand48 stream feeds a Generator-compatible shim via its raw bits;
    we instead run the reference engine directly off drand48 draws, at a
    smaller scale (pure Python path).
    """

    def run():
        n = scale.n // 4
        # drand48-backed trial: draw choices manually using the exact
        # generator the paper used.
        gen = Drand48(scale.seed)
        loads = np.zeros(n, dtype=np.int64)
        half = n // 2
        for _ in range(n):
            f = gen.integers(0, n)
            g = 2 * gen.integers(0, half) + 1  # odd stride mod power of two
            choices = [(f + k * g) % n for k in range(3)]
            best = min(choices, key=lambda b: (loads[b], gen.random()))
            loads[best] += 1
        drand_counts = np.bincount(loads, minlength=5)[:4] / n

        pcg = simulate_batch(
            DoubleHashingChoices(n, 3), n, 30, seed=scale.seed
        ).distribution()
        return drand_counts, pcg

    drand_fracs, pcg = benchmark.pedantic(run, rounds=1, iterations=1)
    for load in range(3):
        assert drand_fracs[load] == pytest.approx(
            pcg.fraction_at(load), abs=0.02
        )
    attach(drand48=[round(float(x), 5) for x in drand_fracs],
           pcg64=[round(pcg.fraction_at(i), 5) for i in range(4)])


def bench_ablation_prime_vs_pow2(benchmark, scale, attach):
    """Prime table size vs power-of-two: same load law (footnote 5)."""

    def run():
        n_pow2 = scale.n
        n_prime = next_prime(scale.n)
        a = simulate_batch(
            DoubleHashingChoices(n_pow2, 3), n_pow2, scale.trials,
            seed=scale.seed,
        ).distribution()
        b = simulate_batch(
            DoubleHashingChoices(n_prime, 3), n_prime, scale.trials,
            seed=scale.seed + 1,
        ).distribution()
        return a, b

    a, b = benchmark.pedantic(run, rounds=1, iterations=1)
    for load in range(3):
        assert a.fraction_at(load) == pytest.approx(
            b.fraction_at(load), abs=0.004
        )
    attach(pow2=[round(x, 5) for x in a.fractions[:4]],
           prime=[round(x, 5) for x in b.fractions[:4]])


def bench_engine_vectorized(benchmark, scale, attach):
    """Vectorized engine throughput (balls/second, all trials)."""
    scheme = DoubleHashingChoices(scale.n, 3)

    def run():
        return simulate_batch(scheme, scale.n, 20, seed=scale.seed)

    batch = benchmark(run)
    attach(balls_per_run=scale.n * 20)
    assert (batch.loads.sum(axis=1) == scale.n).all()


def bench_engine_reference(benchmark, scale, attach):
    """Reference (scalar) engine throughput — the vectorization ablation."""
    n = scale.n // 8
    scheme = DoubleHashingChoices(n, 3)

    def run():
        return simulate_single_trial(scheme, n, seed=scale.seed)

    dist = benchmark(run)
    attach(balls_per_run=n)
    assert dist.counts.sum() == n


@pytest.mark.parametrize(
    "scheme_name", ["double", "random"], ids=["double", "random"]
)
def bench_choice_generation(benchmark, scale, attach, scheme_name):
    """Raw choice-generation cost: double hashing (2 hash values) vs fully
    random without replacement (d values + dedup)."""
    d = 4
    scheme = (
        DoubleHashingChoices(scale.n, d)
        if scheme_name == "double"
        else FullyRandomChoices(scale.n, d)
    )
    rng = np.random.default_rng(scale.seed)

    def run():
        return scheme.batch(100_000, rng)

    out = benchmark(run)
    assert out.shape == (100_000, d)
    attach(rows_per_call=100_000)
