#!/usr/bin/env python
"""Per-scheme throughput benchmark plus the empirical equivalence map.

Run as a script (not under pytest-benchmark — the comparison needs
*interleaved* rounds to survive noisy shared hosts)::

    PYTHONPATH=src python benchmarks/bench_schemes.py [--out BENCH_schemes.json]

Two timed sections per backend tier (numpy always; numba when
importable — the hash kernels and the placement kernel both dispatch
through the shared ``REPRO_BACKEND`` registry and are bit-identical
across tiers):

- **hashing** — raw batch throughput (keys/s) of each keyed hash
  family's vectorized ``__call__`` (multiply-shift, tabulation,
  pairwise, universal) on one fixed key block;
- **placement** — balls/s of every registry scheme through
  ``run_experiment`` (fused generation + placement kernel), keyed
  families via their ``KeyedStreamScheme`` wrappers, with the engine
  ``double``/``random`` schemes as the non-keyed reference.

A third, untimed section reruns the hash-family-zoo equivalence sweep
(chi-square p on the load law and mean max load vs one fully-random
baseline, the certifier's seed convention) and records it under
``equivalence_map``; ``--map-out`` additionally renders it as the
markdown table ``docs/hash-families.md`` embeds.  Theory columns come
from ``repro.hashing.SCHEME_INFO`` — never transcribed here.

``--require-numba`` exits nonzero when the numba tier was not measured,
so a silent numba→numpy fallback cannot masquerade as a recorded tier.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import compare_distributions          # noqa: E402
from repro.core import run_experiment                     # noqa: E402
from repro.experiments.config import ExperimentSpec       # noqa: E402
from repro.hashing import (                               # noqa: E402
    FullyRandomChoices,
    make_hash_family,
    make_scheme,
)
from repro.hashing.registry import SCHEME_INFO            # noqa: E402
from repro.kernels import available_backends              # noqa: E402

HASH_FAMILIES = ("multiply-shift", "tabulation", "pairwise", "universal")
PLACEMENT_SCHEMES = (
    "double", "random", "multiply-shift", "tabulation",
    "tabulation-double", "pairwise", "pairwise-double", "universal",
)
MAP_SCHEMES = (
    "multiply-shift", "tabulation", "tabulation-double",
    "universal", "pairwise", "pairwise-double",
)


def _bench_hashing(n, n_keys, seed, rounds):
    """Median keys/s per family on one fixed key block, interleaved."""
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 1 << 63, size=n_keys, dtype=np.int64)
    hashes = {
        name: make_hash_family(name, n, np.random.default_rng(seed + i))
        for i, name in enumerate(HASH_FAMILIES)
    }
    for h in hashes.values():   # warm-up (JIT compile, allocator pools)
        h(keys)
    times = {name: [] for name in HASH_FAMILIES}
    for _ in range(rounds):
        for name, h in hashes.items():
            t0 = time.perf_counter()
            h(keys)
            times[name].append(time.perf_counter() - t0)
    return {
        name: {
            "median_seconds": round(statistics.median(ts), 6),
            "keys_per_second": round(n_keys / statistics.median(ts), 1),
        }
        for name, ts in times.items()
    }


def _bench_placement(n, d, trials, seed, rounds):
    """Median balls/s per registry scheme through the fused kernel."""
    spec = ExperimentSpec(n=n, d=d, trials=trials, seed=seed)
    balls = spec.balls * trials

    def one(name):
        scheme = make_scheme(name, n, d, seed=seed)
        t0 = time.perf_counter()
        run_experiment(scheme, spec)
        return time.perf_counter() - t0

    for name in PLACEMENT_SCHEMES:  # warm-up
        one(name)
    times = {name: [] for name in PLACEMENT_SCHEMES}
    for _ in range(rounds):
        for name in PLACEMENT_SCHEMES:
            times[name].append(one(name))
    medians = {name: statistics.median(ts) for name, ts in times.items()}
    return {
        name: {
            "median_seconds": round(medians[name], 6),
            "balls_per_second": round(balls / medians[name], 1),
            "throughput_vs_double": round(
                medians["double"] / medians[name], 3
            ),
        }
        for name in PLACEMENT_SCHEMES
    }


def equivalence_map(n, d, trials, seed):
    """Per-scheme chi-square p and mean max load vs one random baseline."""
    spec = ExperimentSpec(n=n, d=d, trials=trials, seed=seed)
    res_base = run_experiment(FullyRandomChoices(n, d), spec)
    base_max = float(res_base.distribution.max_load_per_trial.mean())
    rows = {}
    for k, name in enumerate(MAP_SCHEMES):
        seed_k = seed + 1 + k
        res = run_experiment(
            make_scheme(name, n, d, seed=seed_k), spec.replace(seed=seed_k)
        )
        rows[name] = {
            "chi2_p": round(float(compare_distributions(
                res_base.distribution, res.distribution
            ).p_value), 4),
            "mean_max_load": round(
                float(res.distribution.max_load_per_trial.mean()), 3
            ),
            "random_mean_max_load": round(base_max, 3),
        }
    return rows


def render_map_markdown(rows, n, d, trials, seed) -> str:
    """The equivalence-map table ``docs/hash-families.md`` embeds."""
    lines = [
        f"Generated by `benchmarks/bench_schemes.py` at n = 2^{n.bit_length() - 1},"
        f" d = {d}, trials = {trials}, seed {seed} (baseline: fully random;"
        " challenger k seeded +1+k).",
        "",
        "| Scheme | guarantee | citation | chi2 p vs random"
        " | mean max load | random mean max |",
        "|---|---|---|---|---|---|",
    ]
    for name, row in rows.items():
        info = SCHEME_INFO[name]
        lines.append(
            f"| {name} | {info.guarantee} | {info.citation} |"
            f" {row['chi2_p']:.3f} | {row['mean_max_load']:.2f} |"
            f" {row['random_mean_max_load']:.2f} |"
        )
    return "\n".join(lines) + "\n"


def run(n, d, trials, n_keys, seed, rounds, map_trials):
    tiers = {}
    requested = available_backends()
    for backend in requested:
        os.environ["REPRO_BACKEND"] = backend
        try:
            tiers[backend] = {
                "hashing": _bench_hashing(n, n_keys, seed, rounds),
                "placement": _bench_placement(n, d, trials, seed, rounds),
            }
        finally:
            os.environ.pop("REPRO_BACKEND", None)
    emap = equivalence_map(n, d, map_trials, seed)
    return {
        "geometry": {
            "n_bins": n, "d": d, "trials": trials, "n_keys": n_keys,
            "map_trials": map_trials, "seed": seed,
        },
        "rounds": rounds,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "backends": list(tiers),
        "tiers": tiers,
        "equivalence_map": emap,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_schemes.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--map-out", default=None, dest="map_out",
        help="also write the equivalence map as a markdown table",
    )
    parser.add_argument("--n", type=int, default=2**16)
    parser.add_argument("--d", type=int, default=3)
    parser.add_argument("--trials", type=int, default=8)
    parser.add_argument("--keys", type=float, default=2**21,
                        help="hash-bench keys per round (1e6-style floats ok)")
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--map-trials", type=int, default=50,
                        dest="map_trials")
    parser.add_argument("--seed", type=int, default=20140623)
    parser.add_argument(
        "--quick", action="store_true",
        help="small fast configuration for CI smoke (2^14 bins, 2^18 keys)",
    )
    parser.add_argument(
        "--require-numba", action="store_true", dest="require_numba",
        help="fail (exit 2) unless the numba tier was actually measured",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.n = min(args.n, 2**14)
        args.trials = min(args.trials, 4)
        args.keys = min(int(args.keys), 2**18)
        args.rounds = min(args.rounds, 3)
        args.map_trials = min(args.map_trials, 25)

    report = run(
        n=args.n, d=args.d, trials=args.trials, n_keys=int(args.keys),
        seed=args.seed, rounds=args.rounds, map_trials=args.map_trials,
    )
    if args.require_numba and "numba" not in report["backends"]:
        print(
            "ERROR: --require-numba set but the numba tier was not "
            "measured (numba not importable?)", file=sys.stderr,
        )
        return 2
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    if args.map_out:
        Path(args.map_out).write_text(render_map_markdown(
            report["equivalence_map"], args.n, args.d, args.map_trials,
            args.seed,
        ))
        print(f"wrote {args.map_out}")
    for backend, tier in report["tiers"].items():
        for name, r in tier["hashing"].items():
            print(f"[{backend}] hash {name:>16}: "
                  f"{r['keys_per_second']:>14,.0f} keys/s")
        for name, r in tier["placement"].items():
            print(f"[{backend}] place {name:>15}: "
                  f"{r['balls_per_second']:>13,.0f} balls/s  "
                  f"{r['throughput_vs_double']:5.2f}x vs double")
    for name, row in report["equivalence_map"].items():
        print(f"map {name:>17}: chi2 p {row['chi2_p']:.3f}  "
              f"mean max {row['mean_max_load']:.2f} "
              f"(random {row['random_mean_max_load']:.2f})")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
