#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md.

Thin wrapper over :func:`repro.certify.experiments_md.render_experiments_md`,
which owns the document layout and pulls every paper column from the
anchor registry.  Output is deterministic (pinned seeds, no timing line),
so regenerating without a registry or code change is a no-op diff.

Usage:  python benchmarks/generate_experiments_md.py > EXPERIMENTS.md

To only verify the committed document's paper columns against the
registry (no experiments run):  python -m repro certify --check-drift
"""

from __future__ import annotations

import sys

from repro.certify.experiments_md import render_experiments_md


def main() -> int:
    print(render_experiments_md())
    return 0


if __name__ == "__main__":
    sys.exit(main())
