#!/usr/bin/env python
"""A/B benchmark of the supermarket-kernel backends vs the legacy loop.

Run as a script (not under pytest-benchmark — the comparison needs
*interleaved* rounds to survive noisy shared hosts)::

    PYTHONPATH=src python benchmarks/bench_supermarket.py [--out BENCH_supermarket.json]

Contestants, measured on the Table 7/8 reference geometry (``n = 500``
queues, ``d = 3`` double hashing, ``λ = 0.99``, ``sim_time = 100`` with
``burn_in = 20`` — event *throughput* is what is measured, and it does not
depend on the simulated horizon):

- ``legacy`` — the per-event pure-Python loop this PR replaced
  (``IndexedSet`` busy set, per-queue ``list.pop(0)`` FIFOs, per-departure
  scalar RNG call), inlined below verbatim — only event counters were
  added — so the comparison stays runnable after the old code is gone;
- ``numpy``  — the blocked-draw kernel loop (always available);
- ``numba``  — the JIT backend, included when numba is importable (first
  call is warmed up outside the timed region).

When numba is not importable the ``numba`` entry is still written, as
``{"status": "unavailable", "error": ...}`` — a silent fallback can never
masquerade as a recorded tier.  ``--require-numba`` (the CI bench job
sets it) turns that into a hard failure.

The legacy loop consumes the RNG in a different order than the kernel
contract, so contestants are *statistically* equivalent to the kernels,
not bit-equal; the numpy/numba contestants are asserted bit-identical to
each other during warm-up.

Methodology: contestants run round-robin inside one process for
``--rounds`` rounds, and per-contestant medians are compared.
Interleaving means slow host phases (other tenants, frequency scaling)
hit every contestant equally; medians discard the stragglers.  See
``docs/performance.md``.

The JSON written to ``--out`` records per-round wall-clock, medians,
events/second, and speedups relative to ``legacy``.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.hashing import DoubleHashingChoices             # noqa: E402
from repro.kernels import (                                # noqa: E402
    available_backends,
    run_supermarket_kernel,
)
from repro.queueing.events import IndexedSet               # noqa: E402
from repro.queueing.measures import SojournAccumulator     # noqa: E402
from repro.rng import default_generator                    # noqa: E402

from bench_kernels import numba_unavailable_entry          # noqa: E402

_PREFETCH = 4096
_TIE_BITS = 20


def _legacy_simulate_supermarket(scheme, lam, sim_time, *, burn_in, seed):
    """The pre-kernel per-event loop, verbatim (event counters added).

    Blocked draws for choices/ties/uniforms/exponentials, but a scalar
    ``rng.integers`` call per departure inside ``IndexedSet.sample`` and a
    per-event ``SojournAccumulator.observe_population`` call.
    """
    rng = default_generator(seed)
    n = scheme.n_bins
    queue_len = np.zeros(n, dtype=np.int64)
    fifos = [[] for _ in range(n)]
    busy = IndexedSet(n)
    acc = SojournAccumulator(burn_in=burn_in)
    arrival_rate = lam * n
    now = 0.0
    total_jobs = 0
    n_events = 0

    choice_block = scheme.batch(_PREFETCH, rng)
    tie_keys = rng.integers(
        0, 1 << _TIE_BITS, size=(_PREFETCH, scheme.d), dtype=np.int64
    )
    choice_idx = 0
    uniform_block = rng.random(_PREFETCH)
    expo_block = rng.exponential(1.0, _PREFETCH)
    event_idx = 0

    while True:
        if event_idx >= _PREFETCH:
            uniform_block = rng.random(_PREFETCH)
            expo_block = rng.exponential(1.0, _PREFETCH)
            event_idx = 0
        total_rate = arrival_rate + len(busy)
        now += expo_block[event_idx] / total_rate
        if now >= sim_time:
            break
        is_arrival = uniform_block[event_idx] * total_rate < arrival_rate
        event_idx += 1
        n_events += 1

        if is_arrival:
            if choice_idx >= _PREFETCH:
                choice_block = scheme.batch(_PREFETCH, rng)
                tie_keys = rng.integers(
                    0, 1 << _TIE_BITS, size=(_PREFETCH, scheme.d),
                    dtype=np.int64,
                )
                choice_idx = 0
            choices = choice_block[choice_idx]
            lengths = queue_len[choices]
            target = int(
                choices[
                    np.argmin((lengths << _TIE_BITS) | tie_keys[choice_idx])
                ]
            )
            choice_idx += 1
            fifos[target].append(now)
            if queue_len[target] == 0:
                busy.add(target)
            queue_len[target] += 1
            total_jobs += 1
        else:
            q = busy.sample(rng)
            arrival_time = fifos[q].pop(0)
            acc.observe_sojourn(arrival_time, now)
            queue_len[q] -= 1
            if queue_len[q] == 0:
                busy.remove(q)
            total_jobs -= 1
        acc.observe_population(now, total_jobs)

    return acc.mean, acc.count, n_events


def _contestants(n, d, lam, sim_time, burn_in, seed):
    def kernel_run(backend):
        res = run_supermarket_kernel(
            DoubleHashingChoices(n, d), lam, sim_time, burn_in=burn_in,
            seed=seed, backend=backend,
        )
        return res.mean_sojourn_time, res.completed_jobs, res.n_events

    runs = {
        "legacy": lambda: _legacy_simulate_supermarket(
            DoubleHashingChoices(n, d), lam, sim_time, burn_in=burn_in,
            seed=seed,
        ),
        "numpy": lambda: kernel_run("numpy"),
    }
    if "numba" in available_backends():
        runs["numba"] = lambda: kernel_run("numba")
    return runs


def run(n=500, d=3, lam=0.99, sim_time=100.0, burn_in=20.0, seed=20140623,
        rounds=7):
    """Measure all contestants round-robin; return the JSON report dict."""
    runs = _contestants(n, d, lam, sim_time, burn_in, seed)
    # Warm-up: touches every code path once (numba JIT compile, numpy
    # allocator pools, scheme caches) outside the timed region, and sanity
    # checks each contestant so a broken loop can't post a fast time.
    warm = {}
    for name, fn in runs.items():
        mean, completed, events = fn()
        assert completed > 0 and mean > 1.0, f"{name} produced nonsense"
        warm[name] = (mean, completed, events)
    if "numba" in warm:  # kernel backends must agree exactly
        assert warm["numba"] == warm["numpy"], "numba != numpy"

    times = {name: [] for name in runs}
    for _ in range(rounds):
        for name, fn in runs.items():   # interleaved round-robin
            t0 = time.perf_counter()
            fn()
            times[name].append(time.perf_counter() - t0)

    medians = {name: statistics.median(ts) for name, ts in times.items()}
    report = {
        "geometry": {
            "n_queues": n, "d": d, "lam": lam, "sim_time": sim_time,
            "burn_in": burn_in, "seed": seed, "scheme": "double-hashing",
        },
        "rounds": rounds,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "backends_available": list(available_backends()),
        },
        "results": {
            name: {
                "round_seconds": [round(t, 6) for t in ts],
                "median_seconds": round(medians[name], 6),
                "events_per_second": round(warm[name][2] / medians[name], 1),
                "speedup_vs_legacy": round(
                    medians["legacy"] / medians[name], 3
                ),
            }
            for name, ts in times.items()
        },
    }
    if "numba" not in report["results"]:
        report["results"]["numba"] = numba_unavailable_entry()
    return report


def main(argv=None):
    """CLI entry point; writes the report and prints a summary table."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_supermarket.json"),
        help="where to write the JSON report",
    )
    parser.add_argument("--n", type=int, default=500)
    parser.add_argument("--d", type=int, default=3)
    parser.add_argument("--lam", type=float, default=0.99)
    parser.add_argument("--sim-time", type=float, default=100.0)
    parser.add_argument("--burn-in", type=float, default=20.0)
    parser.add_argument("--rounds", type=int, default=7)
    parser.add_argument("--seed", type=int, default=20140623)
    parser.add_argument(
        "--require-numba", action="store_true", dest="require_numba",
        help="fail (exit 1) when numba silently fell back to numpy",
    )
    args = parser.parse_args(argv)

    report = run(
        n=args.n, d=args.d, lam=args.lam, sim_time=args.sim_time,
        burn_in=args.burn_in, seed=args.seed, rounds=args.rounds,
    )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    for name, r in report["results"].items():
        if r.get("status") == "unavailable":
            print(f"{name:>7}: UNAVAILABLE ({r['error']})")
            continue
        print(
            f"{name:>7}: median {r['median_seconds']*1e3:8.1f} ms  "
            f"{r['events_per_second']:>12,.0f} events/s  "
            f"{r['speedup_vs_legacy']:5.2f}x vs legacy"
        )
    print(f"wrote {args.out}")
    if args.require_numba and (
        report["results"]["numba"].get("status") == "unavailable"
    ):
        print(
            "ERROR: --require-numba set but the numba tier was not "
            "benchmarked (silent numpy fallback)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
