"""Bench: the neighbouring structures — throughput plus shape checks.

One bench per extension structure, timing its characteristic workload and
asserting the double-vs-random equivalence (or documented difference) in
the observable that structure cares about.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.extensions import (
    BloomFilter,
    CuckooFilter,
    CuckooTable,
    DLeftHashTable,
    IBLT,
    OpenAddressTable,
    expected_unsuccessful_probes,
    theoretical_fpr,
)


def bench_bloom_filter(benchmark, scale, attach):
    m, k, n_items = 2**15, 5, 4000
    rng = np.random.default_rng(scale.seed)
    keys = rng.integers(0, 2**59, n_items)
    fresh = rng.integers(2**59, 2**60, 20000)

    def run():
        rates = {}
        for mode in ("double", "enhanced", "random"):
            bf = BloomFilter(m, k, mode=mode, seed=scale.seed)
            bf.add(keys)
            rates[mode] = bf.empirical_fpr(fresh)
        return rates

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    theory = theoretical_fpr(m, k, n_items)
    for mode, rate in rates.items():
        assert rate == pytest.approx(theory, rel=0.4), mode
    attach(theory=round(theory, 5),
           **{m_: round(r, 5) for m_, r in rates.items()})


def bench_cuckoo_table(benchmark, scale, attach):
    def run():
        stats = {}
        for mode in ("double", "random"):
            table = CuckooTable(2**12, 3, mode=mode, seed=scale.seed,
                                max_kicks=2000)
            table.fill_to(0.85)
            stats[mode] = (
                table.load_factor,
                float(np.mean(table.stats.per_insert)),
            )
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats["double"][0] == pytest.approx(stats["random"][0], abs=0.01)
    attach(double=stats["double"], random=stats["random"])


def bench_cuckoo_filter(benchmark, scale, attach):
    def run():
        f = CuckooFilter(2**10, seed=scale.seed, max_kicks=1000)
        key = 0
        try:
            while f.load_factor < 0.9:
                f.insert(key)
                key += 1
        except Exception:
            pass
        return f

    f = benchmark.pedantic(run, rounds=1, iterations=1)
    assert f.load_factor > 0.85
    attach(load=round(f.load_factor, 3))


def bench_open_addressing(benchmark, scale, attach):
    alpha = 0.75

    def run():
        costs = {}
        for probe in ("double", "random", "linear"):
            table = OpenAddressTable(2**12, probe=probe, seed=scale.seed)
            key = 0
            while table.load_factor < alpha:
                table.insert(key)
                key += 1
            costs[probe] = table.mean_unsuccessful_cost(1500, rng=scale.seed)
        return costs

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    law = expected_unsuccessful_probes(alpha)
    assert costs["double"] == pytest.approx(law, rel=0.1)
    assert costs["random"] == pytest.approx(law, rel=0.1)
    assert costs["linear"] > 1.3 * law
    attach(law=round(law, 3), **{k: round(v, 3) for k, v in costs.items()})


def bench_iblt_listing(benchmark, scale, attach):
    m = 2**11

    def run():
        t = IBLT(m, 3, mode="random", seed=scale.seed)
        entries = {k: k * 3 for k in range(10_000, 10_000 + int(0.7 * m))}
        for k, v in entries.items():
            t.insert(k, v)
        result = t.list_entries()
        return entries, result

    entries, result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.complete
    assert dict(result.entries) == entries
    attach(entries=len(entries))


def bench_dleft_fingerprint_table(benchmark, scale, attach):
    def run():
        hists = {}
        for mode in ("double", "random"):
            table = DLeftHashTable(2**11, 4, bucket_capacity=8, mode=mode,
                                   seed=scale.seed)
            for key in range(4 * 2**11):
                table.insert(key)
            hists[mode] = table.occupancy_stats().histogram / (4 * 2**11)
        return hists

    hists = benchmark.pedantic(run, rounds=1, iterations=1)
    width = min(len(hists["double"]), len(hists["random"]))
    assert np.allclose(
        hists["double"][:width], hists["random"][:width], atol=0.015
    )
    attach(
        double=[round(float(x), 4) for x in hists["double"][:4]],
        random=[round(float(x), 4) for x in hists["random"][:4]],
    )
