"""Bench: the paper's theoretical machinery as executable checks.

Covers Section 2.1 (majorization coupling), Section 2.2 (witness-tree
bound), Section 3 / Lemmas 6-7 (ancestry lists and their disjointness),
and Appendix B (layered-induction envelope) — each one timed and verified.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import (
    coupled_majorization_run,
    expected_population,
    simulate_branching_population,
    witness_tree_bound,
)
from repro.analysis.ancestry import (
    ancestry_sizes_of_fresh_choices,
    disjointness_rate,
    record_history,
)
from repro.analysis.layered_induction import beta_trajectory
from repro.core import simulate_batch
from repro.hashing import DoubleHashingChoices


def bench_majorization_coupling(benchmark, scale, attach):
    """Theorem 2: the coupled invariant holds for every ball."""

    def run():
        return coupled_majorization_run(scale.n // 4, scale.n, 4,
                                        seed=scale.seed)

    trace = benchmark.pedantic(run, rounds=1, iterations=1)
    assert trace.holds
    assert trace.final_max_x >= trace.final_max_y
    attach(final_max_x=trace.final_max_x, final_max_y=trace.final_max_y)


def bench_witness_tree_bound(benchmark, scale, attach):
    """Theorem 4: simulated max loads sit below log_d log_2 n + 4d."""

    def run():
        batch = simulate_batch(
            DoubleHashingChoices(scale.n, 3), scale.n, 20, seed=scale.seed
        )
        return int(batch.loads.max()), witness_tree_bound(scale.n, 3)

    observed, bound = benchmark.pedantic(run, rounds=1, iterations=1)
    assert observed <= bound.max_load_bound
    attach(observed_max=observed, bound=bound.max_load_bound,
           failure_probability=bound.failure_probability)


def bench_ancestry_lists(benchmark, scale, attach):
    """Lemmas 6-7: O(log n) ancestry sizes, disjoint across the d choices."""

    def run():
        n = scale.n
        scheme = DoubleHashingChoices(n, 3)
        history = record_history(scheme, int(0.15 * n), seed=scale.seed)
        rng = np.random.default_rng(scale.seed + 1)
        sizes = ancestry_sizes_of_fresh_choices(history, scheme.single(rng))
        rate = disjointness_rate(history, scheme, 40, seed=scale.seed + 2)
        return sizes, rate

    sizes, rate = benchmark.pedantic(run, rounds=1, iterations=1)
    assert max(sizes) <= 8 * math.log(scale.n)
    assert rate > 0.85
    attach(max_ancestry=max(sizes), disjoint_rate=rate)


def bench_branching_process(benchmark, scale, attach):
    """Lemma 6's dominating process: mean ~ e^{T d(d-1)}, geometric tail."""

    def run():
        return simulate_branching_population(
            scale.n, 3, 0.5, trials=400, seed=scale.seed, d_prime=3
        )

    pops = benchmark.pedantic(run, rounds=1, iterations=1)
    theory = expected_population(3, 0.5)
    assert pops.mean() == pytest.approx(theory, rel=0.25)
    attach(mean=float(pops.mean()), theory=theory, max=int(pops.max()))


def bench_lemma5_drift(benchmark, scale, attach):
    """Lemma 5 directly: the empirical increment rate of X_1 matches
    x_0^d − x_1^d within sampling error."""
    from repro.analysis.drift import measure_drift

    def run():
        return measure_drift(
            DoubleHashingChoices(scale.n, 3), 1, seed=scale.seed
        )

    m = benchmark.pedantic(run, rounds=1, iterations=1)
    assert m.gap < 5 * m.standard_error + 0.01
    attach(empirical=round(m.empirical_rate, 5),
           predicted=round(m.predicted_rate, 5))


def bench_wormald_deviation(benchmark, scale, attach):
    """Path deviation from the ODE decays with n at roughly CLT scale."""
    from repro.fluid.wormald import deviation_sweep

    def run():
        return deviation_sweep(
            DoubleHashingChoices, 3, n_values=(256, 1024),
            trials=30, seed=scale.seed,
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sweep.deviations[-1] < sweep.deviations[0]
    attach(deviations=[round(float(x), 5) for x in sweep.deviations],
           decay_exponent=round(sweep.decay_exponent, 3))


def bench_layered_induction(benchmark, scale, attach):
    """Appendix B: simulated level counts below the beta envelope."""

    def run():
        batch = simulate_batch(
            DoubleHashingChoices(scale.n, 3), scale.n, 20,
            seed=scale.seed + 3,
        )
        return batch, beta_trajectory(scale.n, 3)

    batch, traj = benchmark.pedantic(run, rounds=1, iterations=1)
    for level, beta in zip(traj.levels, traj.betas):
        z = (batch.loads >= level).sum(axis=1)
        assert (z <= beta).all()
    attach(levels=traj.levels, betas=[round(b, 1) for b in traj.betas])
