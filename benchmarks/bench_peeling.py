#!/usr/bin/env python
"""Peeling benches: the threshold sweep plus the decoder A/B benchmark.

Two faces:

**pytest face** — ``bench_peeling_threshold_sweep`` below regenerates the
follow-up paper's [30] threshold experiment at bench scale under the
``benchmarks/`` harness (see ``conftest.py``), asserting the transition
shape and the duplicate-edge failure floor.

**script face** — run directly (not under pytest-benchmark; the backend
comparison needs *interleaved* rounds to survive noisy shared hosts)::

    PYTHONPATH=src python benchmarks/bench_peeling.py [--quick] \
        [--out BENCH_peeling.json]

Contestants decode one fixed double-hashed hypergraph below the d = 3
threshold (default ``m = 10^6`` edges, ``c = 0.70``, so the decode
completes and every backend does identical work):

- ``reference`` — :func:`repro.peeling.peel_reference`, the per-edge
  Python oracle the kernels are certified against;
- ``numpy``     — the flat-array scatter kernel (always available);
- ``numba``     — the JIT worklist kernel, included when numba is
  importable (first call warmed up outside the timed region).

When numba is not importable its entry is still written, as
``{"status": "unavailable", "error": ...}`` — a silent fallback can never
masquerade as a recorded tier.  ``--require-numba`` (the CI bench job
sets it) turns that into a hard failure.

The report also records a **set-reconciliation** section
(:func:`repro.extensions.reconcile.run_reconciliation`): two parties,
``--items`` keys each differing in ``--diff``, symmetric-difference IBLT
sized by the delta, double-hashed vs fully-random cells — build and
recovery throughput for the workload the decoder exists to serve.

Methodology: contestants run round-robin inside one process for
``--rounds`` rounds and per-contestant medians are compared, as in
``bench_kernels.py``; see ``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

import numpy as np
import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.extensions.reconcile import run_reconciliation      # noqa: E402
from repro.hashing import DoubleHashingChoices                 # noqa: E402
from repro.kernels import available_backends, run_peeling_kernel  # noqa: E402
from repro.kernels.numba_peeling import NUMBA_IMPORT_ERROR     # noqa: E402
from repro.peeling import (                                    # noqa: E402
    build_hypergraph,
    peel_reference,
    peeling_threshold,
    threshold_experiment,
)


def bench_peeling_threshold_sweep(benchmark, scale, attach):
    """Threshold sweep at bench scale: transition shape + failure floor."""
    def run():
        return threshold_experiment(
            2048, 3, [0.70, 0.78, 0.86, 0.94], trials=8, seed=scale.seed
        )

    exp = benchmark.pedantic(run, rounds=1, iterations=1)
    # Fully random: clean transition across the threshold.
    assert exp.success_random[0] == 1.0
    assert exp.success_random[-1] == 0.0
    # Core fractions agree between schemes at every density.
    for cf_r, cf_d in zip(exp.core_fraction_random, exp.core_fraction_double):
        assert cf_d == pytest.approx(cf_r, abs=0.04)
    # Below threshold, double hashing's residual core is microscopic even
    # when complete recovery fails (duplicate pairs only).
    assert exp.core_fraction_double[0] < 0.01
    assert exp.asymptotic_threshold == pytest.approx(
        peeling_threshold(3), abs=1e-9
    )
    attach(
        densities=list(exp.densities),
        success_random=list(exp.success_random),
        success_double=list(exp.success_double),
        core_random=[round(float(x), 4) for x in exp.core_fraction_random],
        core_double=[round(float(x), 4) for x in exp.core_fraction_double],
    )


# --------------------------------------------------------------------------
# Script face: decoder A/B benchmark + reconciliation throughput
# --------------------------------------------------------------------------

_NUMBA_CONTESTANTS = ("numba",)


def numba_unavailable_entry():
    """The recorded-but-unavailable marker for the numba contestant."""
    return {
        "status": "unavailable",
        "error": f"numba not importable: {NUMBA_IMPORT_ERROR!r}",
    }


def _contestants(graph):
    runs = {
        "reference": lambda: peel_reference(graph),
        "numpy": lambda: run_peeling_kernel(
            graph.edges, graph.n_vertices, backend="numpy"
        ),
    }
    if "numba" in available_backends():
        runs["numba"] = lambda: run_peeling_kernel(
            graph.edges, graph.n_vertices, backend="numba"
        )
    return runs


def _reconcile_entry(n_items, n_diff, mode, seed):
    res = run_reconciliation(n_items, n_diff, mode=mode, seed=seed)
    return {
        "success": res.success,
        "missed": res.missed,
        "spurious": res.spurious,
        "residue_cells": res.residue_cells,
        "rounds": res.rounds,
        "cells": res.cells,
        "build_seconds": round(res.build_seconds, 6),
        "reconcile_seconds": round(res.reconcile_seconds, 6),
        "items_per_second": round(res.items_per_second, 1),
        "delta_per_second": round(res.delta_per_second, 1),
    }


def run(m=10**6, density=0.70, d=3, seed=20140623, rounds=5,
        n_items=10**6, n_diff=10**3):
    """Interleaved decoder A/B rounds plus the reconciliation workload."""
    n = int(np.ceil(m / density))
    graph = build_hypergraph(DoubleHashingChoices(n, d), m, seed=seed)
    runs = _contestants(graph)
    # Warm-up: every contestant decodes once outside the timed region
    # (numba JIT compile, allocator pools) and must agree exactly with
    # the reference — a broken kernel can never post a fast time.
    oracle = runs["reference"]()
    for name, fn in runs.items():
        got = fn()
        assert got.success == oracle.success, f"{name} success mismatch"
        assert got.rounds == oracle.rounds, f"{name} rounds mismatch"
        assert np.array_equal(
            got.peeled_order, oracle.peeled_order
        ), f"{name} peel order mismatch"

    times = {name: [] for name in runs}
    for _ in range(rounds):
        for name, fn in runs.items():   # interleaved round-robin
            t0 = time.perf_counter()
            fn()
            times[name].append(time.perf_counter() - t0)

    medians = {name: statistics.median(ts) for name, ts in times.items()}
    report = {
        "geometry": {
            "n_vertices": n, "n_edges": m, "d": d, "density": density,
            "seed": seed, "scheme": "double-hashing",
            "decode_complete": bool(oracle.success),
        },
        "rounds": rounds,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "backends_available": list(available_backends()),
        },
        "results": {
            name: {
                "round_seconds": [round(t, 6) for t in ts],
                "median_seconds": round(medians[name], 6),
                "edges_per_second": round(m / medians[name], 1),
                "speedup_vs_reference": round(
                    medians["reference"] / medians[name], 3
                ),
            }
            for name, ts in times.items()
        },
        "reconciliation": {
            "n_items": n_items,
            "n_diff": n_diff,
            "d": d,
            "modes": {
                mode: _reconcile_entry(n_items, n_diff, mode, seed)
                for mode in ("double", "random")
            },
        },
    }
    for name in _NUMBA_CONTESTANTS:
        if name not in report["results"]:
            report["results"][name] = numba_unavailable_entry()
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="A/B benchmark of the peeling-decoder backends"
    )
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_peeling.json"),
        help="where to write the JSON report",
    )
    parser.add_argument("--m", type=float, default=1e6,
                        help="hyperedges to decode")
    parser.add_argument("--density", type=float, default=0.70)
    parser.add_argument("--d", type=int, default=3)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--seed", type=int, default=20140623)
    parser.add_argument("--items", type=float, default=1e6,
                        help="reconciliation items per party")
    parser.add_argument("--diff", type=float, default=1e3,
                        help="reconciliation symmetric-difference size")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI scale: m=1e5 edges, 2e5 items, 3 rounds",
    )
    parser.add_argument(
        "--require-numba", action="store_true", dest="require_numba",
        help="fail (exit 1) when the numba tier was not benchmarked",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.m, args.items, args.rounds = 1e5, 2e5, 3

    report = run(
        m=int(args.m), density=args.density, d=args.d, seed=args.seed,
        rounds=args.rounds, n_items=int(args.items), n_diff=int(args.diff),
    )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    for name, r in report["results"].items():
        if r.get("status") == "unavailable":
            print(f"{name:>10}: UNAVAILABLE ({r['error']})")
            continue
        print(
            f"{name:>10}: median {r['median_seconds']*1e3:8.1f} ms  "
            f"{r['edges_per_second']:>12,.0f} edges/s  "
            f"{r['speedup_vs_reference']:5.2f}x vs reference"
        )
    for mode, r in report["reconciliation"]["modes"].items():
        verdict = "ok" if r["success"] else (
            f"INCOMPLETE (missed={r['missed']} spurious={r['spurious']} "
            f"residue={r['residue_cells']})"
        )
        print(
            f"{'recon-' + mode:>13}: {r['items_per_second']:>12,.0f} items/s  "
            f"{r['delta_per_second']:>10,.0f} delta-keys/s  {verdict}"
        )
    print(f"wrote {args.out}")
    if args.require_numba and any(
        report["results"][name].get("status") == "unavailable"
        for name in _NUMBA_CONTESTANTS
    ):
        print(
            "ERROR: --require-numba set but the numba tier was not "
            "benchmarked (silent numpy fallback)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
