"""Bench: the peeling experiment of the follow-up paper [30].

Verifies, at a density sweep around the d = 3 threshold (≈0.818):

- fully random: sharp success/failure transition at the DE threshold;
- double hashing: same *core-fraction* behaviour, but a constant-rate
  complete-recovery failure floor from duplicate hyperedges (the paper's
  footnote-1 caveat made quantitative).
"""

from __future__ import annotations

import pytest

from repro.peeling import peeling_threshold, threshold_experiment


def bench_peeling_threshold_sweep(benchmark, scale, attach):
    def run():
        return threshold_experiment(
            2048, 3, [0.70, 0.78, 0.86, 0.94], trials=8, seed=scale.seed
        )

    exp = benchmark.pedantic(run, rounds=1, iterations=1)
    # Fully random: clean transition across the threshold.
    assert exp.success_random[0] == 1.0
    assert exp.success_random[-1] == 0.0
    # Core fractions agree between schemes at every density.
    for cf_r, cf_d in zip(exp.core_fraction_random, exp.core_fraction_double):
        assert cf_d == pytest.approx(cf_r, abs=0.04)
    # Below threshold, double hashing's residual core is microscopic even
    # when complete recovery fails (duplicate pairs only).
    assert exp.core_fraction_double[0] < 0.01
    assert exp.asymptotic_threshold == pytest.approx(
        peeling_threshold(3), abs=1e-9
    )
    attach(
        densities=list(exp.densities),
        success_random=list(exp.success_random),
        success_double=list(exp.success_double),
        core_random=[round(float(x), 4) for x in exp.core_fraction_random],
        core_double=[round(float(x), 4) for x in exp.core_fraction_double],
    )
