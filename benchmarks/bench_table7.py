"""Bench: regenerate paper Table 7 — Vöcking's d-left scheme.

Paper shape (d = 4, registry anchors ``table7/n18/random/load*``):
symmetric fractions at loads 0/2 around a dominant load-1 mass, for
both schemes (bins of load 3 essentially never appear at this scale).
"""

from __future__ import annotations

import pytest

from repro.certify.anchors import paper_values
from repro.experiments import table7_dleft

PAPER = paper_values()["table7"][(18, "random")]


def bench_table7(benchmark, scale, attach):
    table = benchmark.pedantic(
        table7_dleft,
        args=(scale.spec(d=4),),
        rounds=1,
        iterations=1,
    )
    by_load = {row[0]: row for row in table.rows}
    for load, expected in PAPER.items():
        _, rand, dbl, fluid = by_load[load]
        assert fluid == pytest.approx(expected, abs=1e-4)
        assert rand == pytest.approx(expected, abs=0.004)
        assert dbl == pytest.approx(expected, abs=0.004)
    # Load-3 bins essentially never appear (paper: ~2 bins in 10^4 trials).
    assert by_load.get(3, (3, 0, 0, 0))[1] < 1e-4
    attach(rows={k: tuple(v[1:]) for k, v in by_load.items()}, paper=PAPER)
