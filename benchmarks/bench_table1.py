"""Bench: regenerate paper Table 1 — load fractions, random vs double.

The paper's rows (registry anchors ``table1/d*/random/load*``) have the
two schemes agreeing to ~1e-4; the bench asserts both properties at the
reduced scale's looser tolerance.
"""

from __future__ import annotations

import pytest

from repro.certify.anchors import paper_values
from repro.experiments import table1_load_fractions

_T1 = paper_values()["table1"]
PAPER_D3 = _T1[(3, "random")]
# Load 3 at d = 4 is ~2e-5: pure noise at bench scale, so not asserted.
PAPER_D4 = {k: v for k, v in _T1[(4, "random")].items() if k <= 2}


@pytest.mark.parametrize("d,paper", [(3, PAPER_D3), (4, PAPER_D4)], ids=["d3", "d4"])
def bench_table1(benchmark, scale, attach, track_chunks, d, paper):
    table = benchmark.pedantic(
        table1_load_fractions,
        args=(scale.spec(d=d),),
        kwargs=dict(progress=track_chunks),
        rounds=1,
        iterations=1,
    )
    by_load = {row[0]: row for row in table.rows}
    for load, expected in paper.items():
        _, rand, dbl = by_load[load]
        assert rand == pytest.approx(expected, abs=0.004)
        assert dbl == pytest.approx(expected, abs=0.004)
        assert rand == pytest.approx(dbl, abs=0.006)
    attach(
        rows={load: (r[1], r[2]) for load, r in by_load.items()},
        paper=paper,
    )
