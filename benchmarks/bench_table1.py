"""Bench: regenerate paper Table 1 — load fractions, random vs double.

Paper row shape (d = 3): 0.17693 / 0.64664 / 0.17592 / 0.00051, with the
two schemes agreeing to ~1e-4.  The bench asserts both properties at the
reduced scale's looser tolerance.
"""

from __future__ import annotations

import pytest

from repro.experiments import table1_load_fractions

PAPER_D3 = {0: 0.17693, 1: 0.64664, 2: 0.17592, 3: 0.00051}
PAPER_D4 = {0: 0.14081, 1: 0.71840, 2: 0.14077}


@pytest.mark.parametrize("d,paper", [(3, PAPER_D3), (4, PAPER_D4)], ids=["d3", "d4"])
def bench_table1(benchmark, scale, attach, track_chunks, d, paper):
    table = benchmark.pedantic(
        table1_load_fractions,
        args=(scale.spec(d=d),),
        kwargs=dict(progress=track_chunks),
        rounds=1,
        iterations=1,
    )
    by_load = {row[0]: row for row in table.rows}
    for load, expected in paper.items():
        _, rand, dbl = by_load[load]
        assert rand == pytest.approx(expected, abs=0.004)
        assert dbl == pytest.approx(expected, abs=0.004)
        assert rand == pytest.approx(dbl, abs=0.006)
    attach(
        rows={load: (r[1], r[2]) for load, r in by_load.items()},
        paper=paper,
    )
