"""Bench: regenerate paper Table 3 — load fractions at larger n.

The paper's point at n = 2^16 and 2^18 is that the numbers are *stable in
n* and identical between schemes.  The bench runs the largest size that
stays minutes-scale here (2^14; pass a larger BenchScale.n to go bigger)
and checks the fractions match the same limiting values as Table 1's.
"""

from __future__ import annotations

import pytest

from repro.experiments import table3_larger_n

LIMIT_D3 = {0: 0.17696, 1: 0.64659, 2: 0.17594, 3: 0.00051}


def bench_table3(benchmark, scale, attach, track_chunks):
    spec = scale.spec(d=3, log2_n=14, trials=max(scale.trials // 2, 10))
    table = benchmark.pedantic(
        table3_larger_n,
        args=(spec,),
        kwargs=dict(progress=track_chunks),
        rounds=1,
        iterations=1,
    )
    by_load = {row[0]: row for row in table.rows}
    for load, expected in LIMIT_D3.items():
        _, rand, dbl = by_load[load]
        assert rand == pytest.approx(expected, abs=0.004)
        assert dbl == pytest.approx(expected, abs=0.004)
    attach(rows={k: (v[1], v[2]) for k, v in by_load.items()}, limit=LIMIT_D3)
