"""Shared configuration for the benchmark harness.

Each ``bench_table*.py`` regenerates one table of the paper at a reduced
but shape-preserving scale (see DESIGN.md §4 for the scale substitutions),
measures the wall-clock of the regeneration, and attaches the reproduced
numbers as ``extra_info`` so ``--benchmark-json`` output doubles as an
experiment record.

Scales are chosen so the full harness completes in a few minutes.  To run
closer to paper scale, raise the constants in ``BenchScale``.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest


@dataclass(frozen=True)
class BenchScale:
    """Reduced scales used by the benchmark harness."""

    n: int = 2**12          # paper: 2^14..2^18
    trials: int = 50        # paper: 10000
    queue_n: int = 256      # paper: 2^14
    queue_time: float = 200.0   # paper: 10000
    queue_burn_in: float = 40.0  # paper: 1000
    seed: int = 20140623


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    return BenchScale()


@pytest.fixture
def attach(benchmark):
    """Fixture: record reproduced numbers in the benchmark's extra_info."""

    def _attach(**info) -> None:
        for key, value in info.items():
            benchmark.extra_info[key] = repr(value)

    return _attach
