"""Shared configuration for the benchmark harness.

Each ``bench_table*.py`` regenerates one table of the paper at a reduced
but shape-preserving scale (see DESIGN.md §4 for the scale substitutions),
measures the wall-clock of the regeneration, and attaches the reproduced
numbers as ``extra_info`` so ``--benchmark-json`` output doubles as an
experiment record.

Scales are chosen so the full harness completes in a few minutes.  To run
closer to paper scale, raise the constants in ``BenchScale``.

Benchmarks build :class:`repro.ExperimentSpec` instances via
``BenchScale.spec`` / ``BenchScale.queue_spec`` and consume the engine's
progress hook through the ``track_chunks`` fixture, which folds per-chunk
wall-clock into the benchmark's ``extra_info``.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.experiments.config import ExperimentSpec


@dataclass(frozen=True)
class BenchScale:
    """Reduced scales used by the benchmark harness."""

    n: int = 2**12          # paper: 2^14..2^18
    trials: int = 50        # paper: 10000
    queue_n: int = 256      # paper: 2^14
    queue_time: float = 200.0   # paper: 10000
    queue_burn_in: float = 40.0  # paper: 1000
    seed: int = 20140623

    def spec(self, **overrides) -> ExperimentSpec:
        """Balls-in-bins spec at bench scale; overrides win."""
        base = {"n": self.n, "trials": self.trials, "seed": self.seed}
        base.update(overrides)
        return ExperimentSpec(**base)

    def queue_spec(self, **overrides) -> ExperimentSpec:
        """Queueing (Table 8) spec at bench scale; overrides win."""
        base = {
            "n": self.queue_n,
            "sim_time": self.queue_time,
            "burn_in": self.queue_burn_in,
            "seed": self.seed,
        }
        base.update(overrides)
        return ExperimentSpec(**base)


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    return BenchScale()


@pytest.fixture
def attach(benchmark):
    """Fixture: record reproduced numbers in the benchmark's extra_info."""

    def _attach(**info) -> None:
        for key, value in info.items():
            benchmark.extra_info[key] = repr(value)

    return _attach


@pytest.fixture
def track_chunks(benchmark):
    """Engine progress hook; folds chunk telemetry into extra_info.

    Pass the returned callable as the ``progress=`` argument of a table
    function.  After the benchmarked call, the number of chunks completed
    and the summed per-chunk wall-clock land in ``extra_info`` so the
    ``--benchmark-json`` record carries engine-level observability too.
    """
    events = []

    def _on_chunk(progress) -> None:
        events.append(progress)

    yield _on_chunk

    if events:
        benchmark.extra_info["engine_chunks"] = len(events)
        benchmark.extra_info["engine_chunk_seconds"] = round(
            sum(p.seconds for p in events), 6
        )
        benchmark.extra_info["engine_trials"] = sum(p.trials for p in events)
