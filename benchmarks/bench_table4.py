"""Bench: regenerate paper Table 4 — fraction of trials with max load 3.

Paper shape (d = 3): the percentage rises steeply with n — from under
half the trials at 2^10 to ~100% by 2^14 — with random and double
tracking each other within a point or two.  The bench asserts the
monotone rise and the cross-scheme agreement; the published cells come
from the anchor registry.
"""

from __future__ import annotations

import numpy as np

from repro.certify.anchors import paper_values
from repro.experiments import table4_max_load

_T4_D3 = paper_values()["table4"][(3, "random")]
PAPER_D3 = {k: _T4_D3[k] for k in (10, 11, 12, 13)}


def bench_table4(benchmark, scale, attach, track_chunks):
    spec = scale.spec(d=3, trials=scale.trials * 2)
    table = benchmark.pedantic(
        table4_max_load,
        args=(spec,),
        kwargs=dict(
            log2_n_values=(10, 11, 12, 13),
            progress=track_chunks,
        ),
        rounds=1,
        iterations=1,
    )
    random_col = [row[1] for row in table.rows]
    double_col = [row[2] for row in table.rows]
    # Monotone rise with n.
    assert random_col == sorted(random_col)
    # Cross-scheme agreement within binomial noise (100 pp scale, n=100
    # trials -> se ~ 5 pp).
    for rand, dbl in zip(random_col, double_col):
        assert abs(rand - dbl) < 18.0
    # Shape agreement with the paper at matching n (coarse: reduced trials).
    for (label, rand, _), (log2_n, expected) in zip(
        table.rows, sorted(PAPER_D3.items())
    ):
        assert abs(rand - expected) < 18.0, (label, rand, expected)
    attach(rows=table.rows, paper=PAPER_D3)
