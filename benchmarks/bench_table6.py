"""Bench: regenerate paper Table 6 — the heavily loaded case (m = 16n).

Paper shape (d = 3): the load distribution is centered at 16 with
fractions 0.16885 / 0.62220 / 0.19482 at loads 15/16/17, schemes
indistinguishable, and the fluid limit run to T = 16 predicts the same
values.
"""

from __future__ import annotations

import pytest

from repro.experiments import table6_heavy_load

PAPER_D3 = {14: 0.01254, 15: 0.16885, 16: 0.62220, 17: 0.19482}


def bench_table6(benchmark, scale, attach, track_chunks):
    # 16x the balls: shrink bins to keep runtime bounded.
    spec = scale.spec(d=3, n=scale.n // 4, trials=max(scale.trials // 5, 5))
    table = benchmark.pedantic(
        table6_heavy_load,
        args=(spec,),
        kwargs=dict(balls_per_bin=16, progress=track_chunks),
        rounds=1,
        iterations=1,
    )
    by_load = {row[0]: row for row in table.rows}
    for load, expected in PAPER_D3.items():
        _, rand, dbl, fluid = by_load[load]
        assert fluid == pytest.approx(expected, rel=0.02)
        assert rand == pytest.approx(expected, abs=0.012)
        assert dbl == pytest.approx(expected, abs=0.012)
        assert rand == pytest.approx(dbl, abs=0.015)
    attach(rows={k: tuple(v[1:]) for k, v in by_load.items()}, paper=PAPER_D3)
