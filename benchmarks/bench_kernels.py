#!/usr/bin/env python
"""A/B benchmark of the placement-kernel backends vs the pre-kernel engine.

Run as a script (not under pytest-benchmark — the comparison needs
*interleaved* rounds to survive noisy shared hosts)::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--out BENCH_kernels.json]

Contestants, measured on the acceptance geometry (``n = 2^12`` bins,
``m = n`` balls, ``trials = 50``, double hashing, ``d = 3``):

- ``legacy``  — the per-ball-step engine this PR replaced, inlined below
  verbatim so the comparison stays runnable after the old code is gone;
- ``numpy``   — the fused out-of-order commit kernel (always available);
- ``numba``   — the JIT backend, included when numba is importable (first
  call is warmed up outside the timed region);
- ``numba-parallel`` — the parallel-trials prange kernel
  (:func:`repro.kernels.run_parallel_trials`), numba only.

When numba is not importable the ``numba``/``numba-parallel`` entries are
still written, as ``{"status": "unavailable", "error": ...}`` — a silent
fallback can never masquerade as a recorded tier.  ``--require-numba``
(the CI bench job sets it) turns that into a hard failure.

Methodology: contestants run round-robin inside one process for ``--rounds``
rounds, and per-contestant medians are compared.  Interleaving means slow
host phases (other tenants, frequency scaling) hit every contestant
equally; medians discard the stragglers.  See ``docs/performance.md``.

The JSON written to ``--out`` records per-round wall-clock, medians,
balls/second, and speedups relative to ``legacy``.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import simulate_batch                     # noqa: E402
from repro.hashing import DoubleHashingChoices            # noqa: E402
from repro.kernels import (                               # noqa: E402
    available_backends,
    run_parallel_trials,
)
from repro.kernels.numba_backend import NUMBA_IMPORT_ERROR  # noqa: E402
from repro.rng import default_generator                   # noqa: E402

_NUMBA_CONTESTANTS = ("numba", "numba-parallel")


def numba_unavailable_entry():
    """The recorded-but-unavailable marker for numba contestants."""
    return {
        "status": "unavailable",
        "error": f"numba not importable: {NUMBA_IMPORT_ERROR!r}",
    }


def _legacy_simulate_batch(scheme, n_balls, trials, *, seed, tie_break="random",
                           block=128):
    """The pre-kernel vectorized engine, verbatim (trials in lock-step,
    one gather/argmin/scatter per ball step, float-noise tie-breaking)."""
    rng = default_generator(seed)
    n = scheme.n_bins
    d = scheme.d
    loads = np.zeros((trials, n), dtype=np.int32)
    rows = np.arange(trials)
    random_ties = tie_break == "random" and d > 1

    remaining = n_balls
    while remaining > 0:
        steps = min(block, remaining)
        choices = scheme.batch(steps * trials, rng).reshape(steps, trials, d)
        noise = rng.random((steps, trials, d)) if random_ties else None
        for s in range(steps):
            ball_choices = choices[s]
            candidate = loads[rows[:, None], ball_choices]
            if random_ties:
                keys = candidate + noise[s]
                picks = np.argmin(keys, axis=1)
            else:
                picks = np.argmin(candidate, axis=1)
            chosen = ball_choices[rows, picks]
            loads[rows, chosen] += 1
        remaining -= steps
    return loads


def _contestants(n, d, n_balls, trials, seed):
    runs = {
        "legacy": lambda: _legacy_simulate_batch(
            DoubleHashingChoices(n, d), n_balls, trials, seed=seed
        ),
        "numpy": lambda: simulate_batch(
            DoubleHashingChoices(n, d), n_balls, trials, seed=seed,
            backend="numpy",
        ).loads,
    }
    if "numba" in available_backends():
        runs["numba"] = lambda: simulate_batch(
            DoubleHashingChoices(n, d), n_balls, trials, seed=seed,
            backend="numba",
        ).loads
        # Per-trial counter streams inside one prange kernel; returns the
        # (trials, width) histogram matrix instead of raw loads.
        runs["numba-parallel"] = lambda: run_parallel_trials(
            DoubleHashingChoices(n, d), n_balls, trials, root=seed,
            backend="numba",
        )
    return runs


def _balls_per_trial(name, result):
    """Ball totals per trial; ``numba-parallel`` returns histogram rows."""
    arr = np.asarray(result)
    if name == "numba-parallel":  # (trials, width) histogram matrix
        return (arr * np.arange(arr.shape[1])).sum(axis=1)
    return arr.sum(axis=1)


def run(n=2**12, d=3, trials=50, seed=20140623, rounds=7):
    n_balls = n
    runs = _contestants(n, d, n_balls, trials, seed)
    # Warm-up: touches every code path once (numba JIT compile, numpy
    # allocator pools, scheme caches) outside the timed region, and checks
    # ball conservation so a broken kernel can't post a fast time.
    for name, fn in runs.items():
        totals = _balls_per_trial(name, fn())
        assert (totals == n_balls).all(), f"{name} lost balls"

    times = {name: [] for name in runs}
    for _ in range(rounds):
        for name, fn in runs.items():   # interleaved round-robin
            t0 = time.perf_counter()
            fn()
            times[name].append(time.perf_counter() - t0)

    balls = n_balls * trials
    medians = {name: statistics.median(ts) for name, ts in times.items()}
    report = {
        "geometry": {
            "n_bins": n, "d": d, "n_balls": n_balls, "trials": trials,
            "seed": seed, "scheme": "double-hashing",
        },
        "rounds": rounds,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "backends_available": list(available_backends()),
        },
        "results": {
            name: {
                "round_seconds": [round(t, 6) for t in ts],
                "median_seconds": round(medians[name], 6),
                "balls_per_second": round(balls / medians[name], 1),
                "speedup_vs_legacy": round(
                    medians["legacy"] / medians[name], 3
                ),
            }
            for name, ts in times.items()
        },
    }
    for name in _NUMBA_CONTESTANTS:
        if name not in report["results"]:
            report["results"][name] = numba_unavailable_entry()
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_kernels.json"),
        help="where to write the JSON report",
    )
    parser.add_argument("--n", type=int, default=2**12)
    parser.add_argument("--d", type=int, default=3)
    parser.add_argument("--trials", type=int, default=50)
    parser.add_argument("--rounds", type=int, default=7)
    parser.add_argument("--seed", type=int, default=20140623)
    parser.add_argument(
        "--require-numba", action="store_true", dest="require_numba",
        help="fail (exit 1) when numba silently fell back to numpy",
    )
    args = parser.parse_args(argv)

    report = run(
        n=args.n, d=args.d, trials=args.trials, seed=args.seed,
        rounds=args.rounds,
    )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    for name, r in report["results"].items():
        if r.get("status") == "unavailable":
            print(f"{name:>14}: UNAVAILABLE ({r['error']})")
            continue
        print(
            f"{name:>14}: median {r['median_seconds']*1e3:8.1f} ms  "
            f"{r['balls_per_second']:>12,.0f} balls/s  "
            f"{r['speedup_vs_legacy']:5.2f}x vs legacy"
        )
    print(f"wrote {args.out}")
    if args.require_numba and any(
        report["results"][name].get("status") == "unavailable"
        for name in _NUMBA_CONTESTANTS
    ):
        print(
            "ERROR: --require-numba set but the numba tier was not "
            "benchmarked (silent numpy fallback)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
