#!/usr/bin/env python
"""A/B benchmark of keyed service throughput: schemes and kernel tiers.

Run as a script (not under pytest-benchmark — the comparisons need
*interleaved* rounds to survive noisy shared hosts)::

    PYTHONPATH=src python benchmarks/bench_service.py [--out BENCH_service.json]

Two sections, both on the acceptance geometry (``n = 2^16`` bins,
``d = 2``, fresh-key insert stream, then a full-hit lookup pass):

**schemes** — hashing contestants on the default (numpy) kernel tier:

- ``double``     — keyed double hashing over multiply-shift (two hash
  computations per key — the paper's pitch);
- ``random``     — d independent multiply-shift hashes per key (the
  fully random keyed baseline);
- ``tabulation`` — d independent simple-tabulation hashes (the strongest
  practical family; the follow-up paper's setting).

**backends** — assignment-map kernel tiers
(:mod:`repro.kernels.keymap`) under the ``double`` scheme:

- ``reference``      — the demoted dict path, one Python loop per batch
  (the semantics oracle every tier is certified against);
- ``numpy``          — the vectorized cohort-probing kernel;
- ``numba`` / ``numba-parallel`` — the JIT tiers, included when numba is
  importable (first call warmed up outside the timed region).

When numba is not importable those entries are still written, as
``{"status": "unavailable", "error": ...}`` — a silent fallback can
never masquerade as a recorded tier.  ``--require-numba`` (the CI bench
job sets it) turns that into a hard failure.

Each round builds a fresh presized :class:`repro.service.KeyedStore`,
times one ``insert_many`` over ``--keys`` fresh keys (hashing +
micro-batched least-loaded placement + assignment-map update), then
times one ``lookup_many`` over the same keys.  Contestants run
round-robin inside one process; per-contestant medians are compared, so
slow host phases hit every contestant equally.  See ``docs/service.md``.

The JSON written to ``--out`` records per-round wall-clock, medians,
insert and lookup ops/second, throughput ratios (vs ``double`` for
schemes, vs ``reference`` for backends), and the final tail loads
(max/p99/p999) so balance regressions are visible next to throughput.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.kernels.keymap import available_keymap_backends  # noqa: E402
from repro.kernels.numba_keymap import NUMBA_IMPORT_ERROR   # noqa: E402
from repro.metrics import MetricsRegistry                   # noqa: E402
from repro.service import KeyedStore                        # noqa: E402

SCHEMES = ("double", "random", "tabulation")
_NUMBA_TIERS = ("numba", "numba-parallel")


def numba_unavailable_entry():
    """The recorded-but-unavailable marker for a numba kernel tier."""
    return {
        "status": "unavailable",
        "error": f"numba not importable: {NUMBA_IMPORT_ERROR!r}",
    }


def _one_round(scheme, backend, n, d, n_keys, seed, micro_batch, key_start,
               check=False):
    """Insert + look up ``n_keys`` fresh keys in a fresh presized store."""
    store = KeyedStore(
        n, d, scheme=scheme, seed=seed, micro_batch=micro_batch,
        backend=backend, expected_keys=n_keys, metrics=MetricsRegistry(),
    )
    keys = np.arange(key_start, key_start + n_keys, dtype=np.int64)
    t0 = time.perf_counter()
    bins = store.insert_many(keys)
    t1 = time.perf_counter()
    found = store.lookup_many(keys)
    t2 = time.perf_counter()
    loads = store.loads
    if check:
        assert loads.sum() == n_keys, f"{scheme}/{backend} lost keys"
        assert store.size == n_keys
        assert (found == bins).all(), f"{scheme}/{backend} lookup mismatch"
    p99, p999 = (float(q) for q in np.quantile(loads, (0.99, 0.999)))
    return t1 - t0, t2 - t1, {
        "max_load": int(loads.max()),
        "p99": p99,
        "p999": p999,
    }


def _bench_contestants(contestants, n, d, n_keys, seed, rounds, micro_batch):
    """Interleaved insert+lookup rounds; returns per-contestant raw data.

    ``contestants`` maps name -> (scheme, backend).  Warm-up runs every
    contestant once outside the timed region (tabulation table draws,
    JIT compiles, allocator pools) with conservation and lookup
    correctness checked — a broken tier can never post a fast time.
    """
    ins = {name: [] for name in contestants}
    lkp = {name: [] for name in contestants}
    tails = {}
    for name, (scheme, backend) in contestants.items():
        _, _, tails[name] = _one_round(
            scheme, backend, n, d, n_keys, seed, micro_batch,
            key_start=1, check=True,
        )
    for r in range(rounds):
        for name, (scheme, backend) in contestants.items():
            t_ins, t_lkp, _ = _one_round(
                scheme, backend, n, d, n_keys, seed, micro_batch,
                key_start=1 + (r + 1) * n_keys,
            )
            ins[name].append(t_ins)
            lkp[name].append(t_lkp)
    return ins, lkp, tails


def _results(ins, lkp, tails, n_keys, baseline):
    """Median summaries with throughput ratios vs ``baseline``."""
    med_i = {name: statistics.median(ts) for name, ts in ins.items()}
    med_l = {name: statistics.median(ts) for name, ts in lkp.items()}
    return {
        name: {
            "insert_round_seconds": [round(t, 6) for t in ins[name]],
            "lookup_round_seconds": [round(t, 6) for t in lkp[name]],
            "median_seconds": round(med_i[name], 6),
            "lookup_median_seconds": round(med_l[name], 6),
            "insert_ops_per_second": round(n_keys / med_i[name], 1),
            "lookup_ops_per_second": round(n_keys / med_l[name], 1),
            f"throughput_vs_{baseline}": round(
                med_i[baseline] / med_i[name], 3
            ),
            f"lookup_vs_{baseline}": round(med_l[baseline] / med_l[name], 3),
            "tail_loads": tails[name],
        }
        for name in ins
    }


def run(n=2**16, d=2, n_keys=2**20, seed=20140623, rounds=5,
        micro_batch=2048):
    """Both benchmark sections; returns the JSON-ready report dict."""
    scheme_runs = {name: (name, None) for name in SCHEMES}
    s_ins, s_lkp, s_tails = _bench_contestants(
        scheme_runs, n, d, n_keys, seed, rounds, micro_batch
    )
    backend_runs = {
        backend: ("double", backend)
        for backend in available_keymap_backends()
    }
    b_ins, b_lkp, b_tails = _bench_contestants(
        backend_runs, n, d, n_keys, seed, rounds, micro_batch
    )
    backends = _results(b_ins, b_lkp, b_tails, n_keys, baseline="reference")
    for tier in _NUMBA_TIERS:
        if tier not in backends:
            backends[tier] = numba_unavailable_entry()
    return {
        "geometry": {
            "n_bins": n, "d": d, "n_keys": n_keys, "seed": seed,
            "micro_batch": micro_batch,
        },
        "rounds": rounds,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "keymap_backends_available": list(available_keymap_backends()),
        },
        "results": _results(s_ins, s_lkp, s_tails, n_keys, baseline="double"),
        "backends": backends,
    }


def _print_section(title, results, ratio_key):
    print(f"-- {title} --")
    for name, r in results.items():
        if r.get("status") == "unavailable":
            print(f"{name:>14}: UNAVAILABLE ({r['error']})")
            continue
        print(
            f"{name:>14}: insert {r['insert_ops_per_second']:>12,.0f} ops/s  "
            f"lookup {r['lookup_ops_per_second']:>12,.0f} ops/s  "
            f"{r[ratio_key]:5.2f}x  max load {r['tail_loads']['max_load']}"
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_service.json"),
        help="where to write the JSON report",
    )
    parser.add_argument("--n", type=int, default=2**16)
    parser.add_argument("--d", type=int, default=2)
    parser.add_argument("--keys", type=float, default=2**20,
                        help="inserts per round (accepts 1e6-style floats)")
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--micro-batch", type=int, default=2048,
                        dest="micro_batch")
    parser.add_argument("--seed", type=int, default=20140623)
    parser.add_argument(
        "--quick", action="store_true",
        help="small fast configuration for CI smoke (2^14 bins, 2^17 keys)",
    )
    parser.add_argument(
        "--require-numba", action="store_true", dest="require_numba",
        help="fail (exit 1) when the numba tiers were not benchmarked",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.n = min(args.n, 2**14)
        args.keys = min(int(args.keys), 2**17)
        args.rounds = min(args.rounds, 3)

    report = run(
        n=args.n, d=args.d, n_keys=int(args.keys), seed=args.seed,
        rounds=args.rounds, micro_batch=args.micro_batch,
    )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    _print_section("schemes (numpy tier)", report["results"],
                   "throughput_vs_double")
    _print_section("keymap backends (double scheme)", report["backends"],
                   "throughput_vs_reference")
    print(f"wrote {args.out}")
    if args.require_numba and any(
        report["backends"][tier].get("status") == "unavailable"
        for tier in _NUMBA_TIERS
    ):
        print(
            "ERROR: --require-numba set but a numba keymap tier was not "
            "benchmarked (silent numpy fallback)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
