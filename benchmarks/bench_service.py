#!/usr/bin/env python
"""A/B benchmark of keyed service throughput across hashing schemes.

Run as a script (not under pytest-benchmark — the comparison needs
*interleaved* rounds to survive noisy shared hosts)::

    PYTHONPATH=src python benchmarks/bench_service.py [--out BENCH_service.json]

Contestants, measured on the acceptance geometry (``n = 2^16`` bins,
``d = 2``, fresh-key insert stream):

- ``double``     — keyed double hashing over multiply-shift (two hash
  computations per key — the paper's pitch);
- ``random``     — d independent multiply-shift hashes per key (the
  fully random keyed baseline);
- ``tabulation`` — d independent simple-tabulation hashes (the strongest
  practical family; the follow-up paper's setting).

Each round inserts ``--keys`` fresh keys into a fresh
:class:`repro.service.KeyedStore` and times the whole batch (hashing +
micro-batched least-loaded placement + key-map update).  Contestants run
round-robin inside one process; per-contestant medians are compared, so
slow host phases hit every scheme equally.  See ``docs/service.md``.

The JSON written to ``--out`` records per-round wall-clock, medians,
keyed insert ops/second per scheme, throughput ratios vs ``double``, and
the final tail loads (max/p99/p999) so balance regressions are visible
next to throughput.  The repo's acceptance bar is >= 1e6 insert ops/s on
the numpy path for the default geometry.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.metrics import MetricsRegistry                 # noqa: E402
from repro.service import KeyedStore                      # noqa: E402

SCHEMES = ("double", "random", "tabulation")


def _one_round(scheme, n, d, n_keys, seed, micro_batch, key_start):
    """Insert ``n_keys`` fresh keys into a fresh store; return stats."""
    store = KeyedStore(
        n, d, scheme=scheme, seed=seed, micro_batch=micro_batch,
        metrics=MetricsRegistry(),
    )
    keys = np.arange(key_start, key_start + n_keys, dtype=np.int64)
    t0 = time.perf_counter()
    store.insert_many(keys)
    seconds = time.perf_counter() - t0
    loads = store.loads
    assert loads.sum() == n_keys, f"{scheme} lost keys"
    assert store.size == n_keys
    p99, p999 = (float(q) for q in np.quantile(loads, (0.99, 0.999)))
    return seconds, {
        "max_load": int(loads.max()),
        "p99": p99,
        "p999": p999,
    }


def run(n=2**16, d=2, n_keys=2**20, seed=20140623, rounds=5,
        micro_batch=2048):
    times = {name: [] for name in SCHEMES}
    tails = {}
    # Warm-up: every scheme once outside the timed region (tabulation
    # table draws, numpy allocator pools), with conservation checked.
    for name in SCHEMES:
        _, tails[name] = _one_round(
            name, n, d, n_keys, seed, micro_batch, key_start=1
        )
    for r in range(rounds):
        for name in SCHEMES:            # interleaved round-robin
            seconds, _ = _one_round(
                name, n, d, n_keys, seed, micro_batch,
                key_start=1 + (r + 1) * n_keys,
            )
            times[name].append(seconds)

    medians = {name: statistics.median(ts) for name, ts in times.items()}
    report = {
        "geometry": {
            "n_bins": n, "d": d, "n_keys": n_keys, "seed": seed,
            "micro_batch": micro_batch,
        },
        "rounds": rounds,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "results": {
            name: {
                "round_seconds": [round(t, 6) for t in ts],
                "median_seconds": round(medians[name], 6),
                "insert_ops_per_second": round(n_keys / medians[name], 1),
                "throughput_vs_double": round(
                    medians["double"] / medians[name], 3
                ),
                "tail_loads": tails[name],
            }
            for name, ts in times.items()
        },
    }
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_service.json"),
        help="where to write the JSON report",
    )
    parser.add_argument("--n", type=int, default=2**16)
    parser.add_argument("--d", type=int, default=2)
    parser.add_argument("--keys", type=float, default=2**20,
                        help="inserts per round (accepts 1e6-style floats)")
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--micro-batch", type=int, default=2048,
                        dest="micro_batch")
    parser.add_argument("--seed", type=int, default=20140623)
    parser.add_argument(
        "--quick", action="store_true",
        help="small fast configuration for CI smoke (2^14 bins, 2^17 keys)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        args.n = min(args.n, 2**14)
        args.keys = min(int(args.keys), 2**17)
        args.rounds = min(args.rounds, 3)

    report = run(
        n=args.n, d=args.d, n_keys=int(args.keys), seed=args.seed,
        rounds=args.rounds, micro_batch=args.micro_batch,
    )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    for name, r in report["results"].items():
        print(
            f"{name:>10}: median {r['median_seconds']*1e3:8.1f} ms  "
            f"{r['insert_ops_per_second']:>12,.0f} insert ops/s  "
            f"{r['throughput_vs_double']:5.2f}x vs double  "
            f"max load {r['tail_loads']['max_load']}"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
