"""Bench: regenerate paper Table 2 — fluid limit vs simulated tails.

Paper rows (d = 3): tail >= 1: 0.8231 (all three columns), tail >= 2:
0.1765 / 0.1764 / 0.1764, tail >= 3: 0.00051 everywhere.
"""

from __future__ import annotations

import pytest

from repro.experiments import table2_fluid_vs_simulation

PAPER = {1: 0.8231, 2: 0.1765, 3: 0.00051}


def bench_table2(benchmark, scale, attach, track_chunks):
    table = benchmark.pedantic(
        table2_fluid_vs_simulation,
        args=(scale.spec(d=3),),
        kwargs=dict(progress=track_chunks),
        rounds=1,
        iterations=1,
    )
    by_load = {row[0]: row for row in table.rows}
    for load, expected in PAPER.items():
        _, fluid, rand, dbl = by_load[load]
        assert fluid == pytest.approx(expected, abs=2e-4)
        assert rand == pytest.approx(expected, abs=0.004)
        assert dbl == pytest.approx(expected, abs=0.004)
    attach(rows={k: tuple(v[1:]) for k, v in by_load.items()}, paper=PAPER)
