"""Bench: regenerate paper Table 2 — fluid limit vs simulated tails.

Paper rows (d = 3, registry anchors ``table2/*``): the fluid column and
both simulated columns agree to the fourth decimal at every tail level.
"""

from __future__ import annotations

import pytest

from repro.certify.anchors import paper_values
from repro.experiments import table2_fluid_vs_simulation

PAPER = paper_values()["table2"]["fluid"]


def bench_table2(benchmark, scale, attach, track_chunks):
    table = benchmark.pedantic(
        table2_fluid_vs_simulation,
        args=(scale.spec(d=3),),
        kwargs=dict(progress=track_chunks),
        rounds=1,
        iterations=1,
    )
    by_load = {row[0]: row for row in table.rows}
    for load, expected in PAPER.items():
        _, fluid, rand, dbl = by_load[load]
        assert fluid == pytest.approx(expected, abs=2e-4)
        assert rand == pytest.approx(expected, abs=0.004)
        assert dbl == pytest.approx(expected, abs=0.004)
    attach(rows={k: tuple(v[1:]) for k, v in by_load.items()}, paper=PAPER)
