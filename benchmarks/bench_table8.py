"""Bench: regenerate paper Table 8 — supermarket queueing sojourn times.

Paper rows are the registry anchors ``table8/lam*/d*/random``, with
double hashing within 0.1% of fully random.  The bench runs λ = 0.9 at
reduced scale (λ = 0.99 needs far longer horizons to equilibrate; the
fluid column covers it exactly) and checks both schemes land near the
fluid equilibrium.
"""

from __future__ import annotations

import pytest

from repro.certify.anchors import paper_values
from repro.experiments import table8_queueing

PAPER = {
    (lam, d): value
    for (lam, d, role), value in paper_values()["table8"].items()
    if role == "random" and lam == 0.9
}


def bench_table8(benchmark, scale, attach):
    table = benchmark.pedantic(
        table8_queueing,
        args=(scale.queue_spec(),),
        kwargs=dict(lambdas=(0.9,), d_values=(3, 4)),
        rounds=1,
        iterations=1,
    )
    for lam, d, rand, dbl, fluid in table.rows:
        expected = PAPER[(lam, d)]
        assert fluid == pytest.approx(expected, abs=2.5e-3)
        assert rand == pytest.approx(expected, rel=0.08)
        assert dbl == pytest.approx(expected, rel=0.08)
    attach(rows=table.rows, paper={str(k): v for k, v in PAPER.items()})
