"""Bench: regenerate paper Table 8 — supermarket queueing sojourn times.

Paper rows: (λ=0.9, d=3) -> 2.028, (0.9, 4) -> 1.778, (0.99, 3) -> 3.860,
(0.99, 4) -> 3.243, with double hashing within 0.1% of fully random.  The
bench runs λ = 0.9 at reduced scale (λ = 0.99 needs far longer horizons to
equilibrate; the fluid column covers it exactly) and checks both schemes
land near the fluid equilibrium.
"""

from __future__ import annotations

import pytest

from repro.experiments import table8_queueing

PAPER = {(0.9, 3): 2.02805, (0.9, 4): 1.77788}


def bench_table8(benchmark, scale, attach):
    table = benchmark.pedantic(
        table8_queueing,
        args=(scale.queue_spec(),),
        kwargs=dict(lambdas=(0.9,), d_values=(3, 4)),
        rounds=1,
        iterations=1,
    )
    for lam, d, rand, dbl, fluid in table.rows:
        expected = PAPER[(lam, d)]
        assert fluid == pytest.approx(expected, abs=2.5e-3)
        assert rand == pytest.approx(expected, rel=0.08)
        assert dbl == pytest.approx(expected, rel=0.08)
    attach(rows=table.rows, paper={str(k): v for k, v in PAPER.items()})
