"""Bench: the process variants beyond the paper's tables.

Covers the engines that extend the paper's question — churn (deletions,
§2.2), weighted balls ([36]), the (1+β) process ([36]), and the one-choice
baseline — each timed and checked for its defining qualitative claim.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    simulate_batch,
    simulate_churn,
    simulate_one_choice,
    simulate_one_plus_beta,
    simulate_weighted,
)
from repro.hashing import DoubleHashingChoices, FullyRandomChoices


def bench_churn(benchmark, scale, attach):
    """Deletions: double hashing stays balanced under heavy churn."""
    n = scale.n // 2

    def run():
        return simulate_churn(
            DoubleHashingChoices(n, 3), n, churn_steps=2 * n,
            trials=10, seed=scale.seed,
        )

    batch = benchmark.pedantic(run, rounds=1, iterations=1)
    assert (batch.loads.sum(axis=1) == n).all()
    assert batch.loads.max() <= 6
    attach(max_load=int(batch.loads.max()))


def bench_weighted(benchmark, scale, attach):
    """Weighted balls: double and random gaps agree."""
    n = scale.n // 2

    def run():
        a = simulate_weighted(
            FullyRandomChoices(n, 3), n, trials=20, seed=scale.seed
        )
        b = simulate_weighted(
            DoubleHashingChoices(n, 3), n, trials=20, seed=scale.seed + 1
        )
        return a, b

    a, b = benchmark.pedantic(run, rounds=1, iterations=1)
    assert a.gap_per_trial.mean() == pytest.approx(
        b.gap_per_trial.mean(), abs=1.0
    )
    attach(gap_random=round(float(a.gap_per_trial.mean()), 3),
           gap_double=round(float(b.gap_per_trial.mean()), 3))


def bench_one_plus_beta(benchmark, scale, attach):
    """(1+β): the >= 2 tail interpolates monotonically in β."""
    n = scale.n // 2

    def run():
        return [
            simulate_one_plus_beta(
                n, n, 15, beta=beta, seed=scale.seed + k
            ).distribution().tail_at(2)
            for k, beta in enumerate((0.0, 0.5, 1.0))
        ]

    tails = benchmark.pedantic(run, rounds=1, iterations=1)
    assert tails[0] > tails[1] > tails[2]
    attach(tails_by_beta=dict(zip(("0.0", "0.5", "1.0"),
                                  [round(t, 4) for t in tails])))


def bench_one_choice_baseline(benchmark, scale, attach):
    """One choice vs two: the power-of-two-choices headline gap."""

    def run():
        one = simulate_one_choice(scale.n, scale.n, 20, seed=scale.seed)
        two = simulate_batch(
            FullyRandomChoices(scale.n, 2), scale.n, 20, seed=scale.seed + 1
        )
        return one, two

    one, two = benchmark.pedantic(run, rounds=1, iterations=1)
    max_one = float(one.loads.max(axis=1).mean())
    max_two = float(two.loads.max(axis=1).mean())
    assert max_one > max_two + 1.0
    attach(mean_max_one_choice=round(max_one, 2),
           mean_max_two_choice=round(max_two, 2))
